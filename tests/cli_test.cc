// End-to-end test of the streamtune_cli binary (path injected by CMake).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

std::string Cli() { return STREAMTUNE_CLI_PATH; }

std::string Tmp(const char* tag) {
  return std::string(::testing::TempDir()) + "/cli_" + tag + "_" +
         std::to_string(::getpid()) + ".txt";
}

int RunCli(const std::string& cmd) {
  return std::system((cmd + " > /dev/null 2>&1").c_str());
}

TEST(CliTest, EndToEndPipeline) {
  std::string hist = Tmp("hist");
  std::string bundle = Tmp("bundle");
  ASSERT_EQ(0, RunCli(Cli() + " collect --workload nexmark-flink --samples 5 "
                           "--out " + hist));
  ASSERT_EQ(0, RunCli(Cli() + " inspect --history " + hist));
  ASSERT_EQ(0, RunCli(Cli() + " pretrain --history " + hist +
                   " --no-cluster --epochs 5 --out " + bundle));
  ASSERT_EQ(0, RunCli(Cli() + " inspect --bundle " + bundle));
  ASSERT_EQ(0, RunCli(Cli() + " tune --bundle " + bundle +
                   " --job nexmark:Q1 --rate 5"));
  ASSERT_EQ(0, RunCli(Cli() + " tune --bundle " + bundle +
                   " --job pqp:linear:0 --rate 3 --model svm"));
  ASSERT_EQ(0, RunCli(Cli() + " simulate --job nexmark:Q2 --rate 2 "
                           "--parallelism 3,4,2"));
  std::remove(hist.c_str());
  std::remove(bundle.c_str());
}

TEST(CliTest, FailsCleanlyOnBadInput) {
  EXPECT_NE(0, RunCli(Cli()));                      // no command
  EXPECT_NE(0, RunCli(Cli() + " bogus"));           // unknown command
  EXPECT_NE(0, RunCli(Cli() + " collect"));         // missing --out
  EXPECT_NE(0, RunCli(Cli() + " tune --bundle /nonexistent.txt "
                           "--job nexmark:Q1"));
  EXPECT_NE(0, RunCli(Cli() + " simulate --job nexmark:Q99"));
  EXPECT_NE(0, RunCli(Cli() + " simulate --job pqp:linear:999"));
}

}  // namespace
