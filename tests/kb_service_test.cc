// Concurrency, snapshot-isolation and drift-trigger tests for KbService.
//
// The concurrent test is the TSan target: N reader threads run inference
// against live snapshots while a writer admits sessions and re-pretrains.
// Build with -DSTREAMTUNE_SANITIZE=thread to check it race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kb/kb_service.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

namespace streamtune::kb {
namespace {

std::vector<core::HistoryRecord> SampleCorpus(int samples_per_job = 5) {
  std::vector<JobGraph> jobs;
  jobs.push_back(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                            workloads::Engine::kFlink));
  jobs.push_back(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                            workloads::Engine::kFlink));
  jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 1));
  core::HistoryOptions opts;
  opts.samples_per_job = samples_per_job;
  return core::CollectHistory(jobs, opts);
}

KbUpdateOptions SmallOptions() {
  KbUpdateOptions o;
  o.pretrain.k = 2;
  o.pretrain.epochs = 2;
  o.pretrain.hidden_dim = 16;
  o.min_new_records = 1000;
  return o;
}

AdmissionRecord MakeAdmission(const JobGraph& job, uint64_t seed) {
  std::vector<JobGraph> jobs{job};
  core::HistoryOptions opts;
  opts.samples_per_job = 1;
  opts.seed = seed;
  AdmissionRecord rec;
  rec.record = core::CollectHistory(jobs, opts).front();
  return rec;
}

std::unique_ptr<sim::StreamEngine> MakeEngine(const JobGraph& job,
                                              uint64_t seed) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  sim::SimConfig cfg;
  cfg.noise_seed = seed;
  return std::make_unique<sim::FlinkEngine>(job, model, cfg);
}

TEST(KbServiceTest, SnapshotIsolation) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  auto before = (*service)->Snapshot();
  const size_t corpus_before = before->bundle()->records().size();
  EXPECT_EQ(before->version(), 0);

  JobGraph q8 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ8,
                                           workloads::Engine::kFlink);
  auto outcome = (*service)->Admit(MakeAdmission(q8, 41));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  // The old snapshot is untouched; the new one sees the admission.
  EXPECT_EQ(before->version(), 0);
  EXPECT_EQ(before->bundle()->records().size(), corpus_before);
  EXPECT_EQ(before->job(q8.name()), nullptr);
  auto after = (*service)->Snapshot();
  EXPECT_EQ(after->version(), 1);
  EXPECT_EQ(after->bundle()->records().size(), corpus_before + 1);
  ASSERT_NE(after->job(q8.name()), nullptr);
  EXPECT_EQ(after->job(q8.name())->admissions, 1);
}

TEST(KbServiceTest, DriftTriggerRepretrains) {
  KbUpdateOptions o = SmallOptions();
  o.min_new_records = 2;
  o.drifted_trigger = 2;
  o.drift_distance = 0.0;     // every admission counts as drifted
  o.growth_fraction = 1e9;    // growth alone never triggers
  auto service = KbService::Build(SampleCorpus(), o);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  JobGraph q8 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ8,
                                           workloads::Engine::kFlink);
  auto first = (*service)->Admit(MakeAdmission(q8, 51));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->drifted);
  EXPECT_FALSE(first->repretrained);

  auto second = (*service)->Admit(MakeAdmission(q8, 52));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->repretrained);

  const KnowledgeBase& kb = (*service)->Snapshot()->kb();
  EXPECT_EQ(kb.drifted_since_pretrain, 0);
  EXPECT_EQ(kb.pretrain_corpus_size,
            static_cast<long long>(kb.bundle->records().size()));
  long long total = 0;
  for (long long a : kb.appearance) total += a;
  EXPECT_EQ(total, static_cast<long long>(kb.bundle->records().size()));
}

TEST(KbServiceTest, GrowthTriggerRepretrains) {
  KbUpdateOptions o = SmallOptions();
  o.min_new_records = 2;
  o.drift_distance = 1e9;     // nothing counts as drifted
  o.growth_fraction = 0.1;    // two admissions into a 15-record corpus
  auto service = KbService::Build(SampleCorpus(), o);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  JobGraph q8 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ8,
                                           workloads::Engine::kFlink);
  ASSERT_TRUE((*service)->Admit(MakeAdmission(q8, 61)).ok());
  auto second = (*service)->Admit(MakeAdmission(q8, 62));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->drifted);
  EXPECT_TRUE(second->repretrained);
}

TEST(KbServiceTest, NewTunerSeedsAdmittedFeedback) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  JobGraph q5 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                           workloads::Engine::kFlink);
  AdmissionRecord rec = MakeAdmission(q5, 71);
  auto snapshot = (*service)->Snapshot();
  int c = snapshot->bundle()->AssignCluster(q5);
  rec.feedback = snapshot->bundle()->WarmUpDataset(c, 5, 71);
  ASSERT_FALSE(rec.feedback.empty());
  ASSERT_TRUE((*service)->Admit(rec).ok());

  auto tuner = (*service)->Snapshot()->NewTuner(q5.name());
  EXPECT_EQ(tuner->FeedbackFor(q5.name()).size(), rec.feedback.size());
  // A job the KB has never seen starts cold.
  auto cold = (*service)->Snapshot()->NewTuner("never-admitted");
  EXPECT_TRUE(cold->FeedbackFor("never-admitted").empty());
}

TEST(KbServiceTest, RejectsMalformedAdmission) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  JobGraph q5 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                           workloads::Engine::kFlink);
  AdmissionRecord rec = MakeAdmission(q5, 81);
  rec.record.parallelism.pop_back();  // wrong operator count
  EXPECT_FALSE((*service)->Admit(rec).ok());
  AdmissionRecord bad_label = MakeAdmission(q5, 82);
  bad_label.record.labels[0] = 7;
  EXPECT_FALSE((*service)->Admit(bad_label).ok());
  // Nothing was published.
  EXPECT_EQ((*service)->Snapshot()->version(), 0);
}

// The TSan target: concurrent readers run GNN inference against whatever
// snapshot is current while one writer admits sessions, repeatedly swapping
// the published state and re-pretraining mid-stream. Any unsynchronized
// mutation of shared graphs/models/state is a data race here.
TEST(KbServiceTest, ConcurrentReadersSeeConsistentSnapshots) {
  KbUpdateOptions o = SmallOptions();
  o.min_new_records = 3;
  o.drifted_trigger = 3;
  o.drift_distance = 0.0;  // admissions drift -> re-pretrain mid-test
  auto service_res = KbService::Build(SampleCorpus(3), o);
  ASSERT_TRUE(service_res.ok()) << service_res.status().ToString();
  KbService* service = service_res->get();

  JobGraph probe = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                              workloads::Engine::kFlink);
  // The readers share this query graph; like every graph shared across
  // threads it must be adjacency-warmed first (the KB warms its own).
  probe.WarmAdjacency();
  std::vector<double> rates(probe.num_operators(), 0.0);
  for (int v = 0; v < probe.num_operators(); ++v) {
    if (probe.op(v).is_source()) rates[v] = 1e6;
  }

  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 12;
  constexpr int kAdmissions = 6;
  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        auto snapshot = service->Snapshot();
        // Internal consistency of whatever state is published.
        if (!ValidateKb(snapshot->kb()).ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto bundle = snapshot->bundle();
        for (int c = 0; c < bundle->num_clusters(); ++c) {
          ml::Matrix emb = bundle->AgnosticEmbeddings(c, probe, rates);
          if (emb.rows() != probe.num_operators()) failures.fetch_add(1);
          auto warmup =
              bundle->WarmUpDataset(c, 4, static_cast<uint64_t>(t * 100 + i));
          for (const ml::LabeledSample& s : warmup) {
            if (s.embedding.size() != static_cast<size_t>(emb.cols())) {
              failures.fetch_add(1);
            }
          }
        }
      }
    });
  }
  std::thread writer([&] {
    JobGraph q8 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ8,
                                             workloads::Engine::kFlink);
    for (int i = 0; i < kAdmissions; ++i) {
      auto outcome =
          service->Admit(MakeAdmission(q8, 900 + static_cast<uint64_t>(i)));
      if (!outcome.ok()) failures.fetch_add(1);
    }
    writer_done.store(true);
  });
  for (auto& t : threads) t.join();
  writer.join();

  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service->version(), kAdmissions);
  // The drift trigger fired at least once mid-test.
  const KnowledgeBase& kb = service->Snapshot()->kb();
  EXPECT_LT(kb.drifted_since_pretrain, kAdmissions);
}

TEST(KbServiceTest, StatsMonotoneAndConsistentAcrossAdmissions) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  KbServiceStats prev = (*service)->Stats();
  EXPECT_TRUE(prev.Consistent());
  EXPECT_EQ(prev.snapshot_version, 0);
  EXPECT_EQ(prev.writer_queue_depth(), 0);
  EXPECT_EQ(prev.snapshot_age(), 0);

  JobGraph q8 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ8,
                                           workloads::Engine::kFlink);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE((*service)->Admit(MakeAdmission(q8, 700 + i)).ok());
    KbServiceStats now = (*service)->Stats();
    EXPECT_TRUE(now.Consistent());
    EXPECT_TRUE(now.MonotoneSince(prev));
    EXPECT_EQ(now.writer_queue_depth(), 0);  // no writer in flight
    prev = now;
  }
  EXPECT_EQ(prev.snapshot_version, 3);
  EXPECT_EQ(prev.admissions_completed, 3);

  // A rejected admission must not leave a phantom queued writer behind.
  AdmissionRecord bad;
  EXPECT_FALSE((*service)->Admit(bad).ok());
  KbServiceStats after_reject = (*service)->Stats();
  EXPECT_TRUE(after_reject.Consistent());
  EXPECT_TRUE(after_reject.MonotoneSince(prev));
  EXPECT_EQ(after_reject.writer_queue_depth(), 0);
  EXPECT_EQ(after_reject.admissions_completed, 3);
}

TEST(KbServiceTest, StatsExposeGedCacheCountersFromAdmissions) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  KbServiceStats before = (*service)->Stats();
  EXPECT_TRUE(before.Consistent());
  EXPECT_EQ(before.ged_hits(), 0);
  EXPECT_EQ(before.ged_misses, 0);
  EXPECT_EQ(before.ged_entries, 0);

  // Each admission runs the two-stage nearest-center search through the
  // service's shared GedCache, so the GED counters must move.
  JobGraph q8 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ8,
                                           workloads::Engine::kFlink);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE((*service)->Admit(MakeAdmission(q8, 900 + i)).ok());
  }
  KbServiceStats after = (*service)->Stats();
  EXPECT_TRUE(after.Consistent());
  EXPECT_TRUE(after.MonotoneSince(before));
  EXPECT_GT(after.ged_misses + after.ged_hits(), 0);
  EXPECT_GT(after.ged_entries, 0);
  // Admissions 2 and 3 repeat admission 1's query structure, so the cache
  // must have served at least one of them.
  EXPECT_GT(after.ged_hits(), 0);
  EXPECT_GT(after.ged_hit_rate(), 0.0);
  EXPECT_LE(after.ged_hit_rate(), 1.0);
  // Policy choices happen only on cache misses (some misses die on the
  // cache's own lower-bound screen before a route is chosen), and only
  // searched routes can exhaust the budget.
  EXPECT_LE(after.ged_policy_exact + after.ged_policy_bounded +
                after.ged_policy_upper,
            after.ged_misses);
  EXPECT_GT(after.ged_policy_exact + after.ged_policy_bounded +
                after.ged_policy_upper,
            0);
  EXPECT_LE(after.ged_budget_exhausted,
            after.ged_policy_exact + after.ged_policy_bounded);
}

TEST(KbServiceTest, StatsConsistentUnderConcurrentWriters) {
  KbUpdateOptions o = SmallOptions();
  auto service_res = KbService::Build(SampleCorpus(3), o);
  ASSERT_TRUE(service_res.ok()) << service_res.status().ToString();
  KbService* service = service_res->get();

  constexpr int kWriters = 3;
  constexpr int kAdmissionsPerWriter = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  std::thread sampler([&] {
    KbServiceStats prev = service->Stats();
    for (int i = 0; i < 200; ++i) {
      KbServiceStats now = service->Stats();
      if (!now.Consistent() || !now.MonotoneSince(prev)) failures.fetch_add(1);
      if (now.writer_queue_depth() < 0 ||
          now.writer_queue_depth() > kWriters) {
        failures.fetch_add(1);
      }
      prev = now;
    }
  });
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      JobGraph q8 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ8,
                                               workloads::Engine::kFlink);
      for (int i = 0; i < kAdmissionsPerWriter; ++i) {
        uint64_t seed = 800 + static_cast<uint64_t>(t * 100 + i);
        if (!service->Admit(MakeAdmission(q8, seed)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  sampler.join();

  EXPECT_EQ(failures.load(), 0);
  KbServiceStats final = service->Stats();
  EXPECT_TRUE(final.Consistent());
  EXPECT_EQ(final.admissions_completed, kWriters * kAdmissionsPerWriter);
  EXPECT_EQ(final.writer_queue_depth(), 0);
  EXPECT_EQ(final.snapshot_version, service->version());
}

TEST(KbServiceTest, WarmStartTunesNoWorseThanCold) {
  auto service = KbService::Build(SampleCorpus(), SmallOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  JobGraph q3 = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                           workloads::Engine::kFlink);
  std::vector<int> ones(q3.num_operators(), 1);

  // Cold session.
  auto cold_engine = MakeEngine(q3, 7);
  ASSERT_TRUE(cold_engine->Deploy(ones).ok());
  cold_engine->ScaleAllSources(6.0);
  auto cold_tuner = (*service)->Snapshot()->NewTuner(q3.name());
  auto cold = cold_tuner->Tune(cold_engine.get());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  // Admit the converged session's artifacts.
  AdmissionRecord rec;
  rec.record.graph = q3;
  rec.record.parallelism = cold_engine->parallelism();
  rec.record.source_rates = cold_engine->current_source_rates();
  auto metrics = cold_engine->Measure();
  ASSERT_TRUE(metrics.ok());
  rec.record.labels = core::LabelBottlenecks(q3, *metrics);
  rec.record.backpressure = metrics->job_backpressure;
  rec.feedback = cold_tuner->FeedbackFor(q3.name());
  ASSERT_TRUE((*service)->Admit(rec).ok());

  // Warm session on a fresh engine: the seeded feedback must not hurt.
  auto warm_engine = MakeEngine(q3, 7);
  ASSERT_TRUE(warm_engine->Deploy(ones).ok());
  warm_engine->ScaleAllSources(6.0);
  auto warm_tuner = (*service)->Snapshot()->NewTuner(q3.name());
  EXPECT_FALSE(warm_tuner->FeedbackFor(q3.name()).empty());
  auto warm = warm_tuner->Tune(warm_engine.get());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_FALSE(warm->ended_with_backpressure);
  EXPECT_LE(warm->reconfigurations, cold->reconfigurations + 3);
}

}  // namespace
}  // namespace streamtune::kb
