#include <gtest/gtest.h>

#include "common/circuit_breaker.h"
#include "common/math_util.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/timer_wheel.h"

namespace streamtune {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ValueIfOk) {
  Result<int> good(42);
  ASSERT_NE(good.value_if_ok(), nullptr);
  EXPECT_EQ(*good.value_if_ok(), 42);
  Result<int> bad(Status::NotFound("missing"));
  EXPECT_EQ(bad.value_if_ok(), nullptr);
}

TEST(ResultTest, ValueOrMovesFallback) {
  Result<std::string> bad(Status::NotFound("missing"));
  EXPECT_EQ(std::move(bad).value_or(std::string("fb")), "fb");
  Result<std::string> good(std::string("hi"));
  EXPECT_EQ(std::move(good).value_or(std::string("fb")), "hi");
}

TEST(ResultDeathTest, ValueOnErrorAbortsInAllBuildTypes) {
  // Hardened Result: accessing the value of an errored Result must abort
  // with the status message, even in release builds.
  Result<int> r(Status::NotFound("the-missing-thing"));
  // The unchecked access is the point here.
  // NOLINTNEXTLINE(st-status-value)
  EXPECT_DEATH({ (void)r.value(); }, "the-missing-thing");
  EXPECT_DEATH({ (void)*r; }, "the-missing-thing");
}

TEST(RetryTest, RetryableCodes) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsRetryable(Status::FailedPrecondition("x")));
  EXPECT_FALSE(IsRetryable(Status::Internal("x")));
}

TEST(RetryTest, SucceedsAfterTransientFailures) {
  int calls = 0;
  RetryStats stats;
  double charged = 0;
  Status st = RetryWithBackoff(
      RetryOptions{},
      [&]() {
        ++calls;
        return calls < 3 ? Status::Unavailable("flaky") : Status::OK();
      },
      [&](double minutes) { charged += minutes; }, &stats);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries, 2);
  // Exponential: 0.5 then 1.0 virtual minutes.
  EXPECT_DOUBLE_EQ(charged, 1.5);
  EXPECT_DOUBLE_EQ(stats.backoff_minutes, 1.5);
}

TEST(RetryTest, NonRetryableFailsImmediately) {
  int calls = 0;
  Status st = RetryWithBackoff(RetryOptions{}, [&]() {
    ++calls;
    return Status::InvalidArgument("bad");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ExhaustsBudgetAndReturnsLastError) {
  RetryOptions opts;
  opts.max_attempts = 3;
  int calls = 0;
  Status st = RetryWithBackoff(opts, [&]() {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, BackoffIsCapped) {
  RetryOptions opts;
  opts.max_attempts = 6;
  opts.initial_backoff_minutes = 4.0;
  opts.backoff_multiplier = 4.0;
  opts.max_backoff_minutes = 8.0;
  double charged = 0;
  (void)RetryWithBackoff(
      opts, []() { return Status::Unavailable("down"); },
      [&](double minutes) { charged += minutes; });
  // 4 + 8 + 8 + 8 + 8: every sleep after the first hits the cap.
  EXPECT_DOUBLE_EQ(charged, 36.0);
}

TEST(RetryTest, BackoffClampsAtHighAttemptCounts) {
  // 10k re-attempts of a doubling backoff would overflow a double around
  // attempt ~1075; the clamp saturates at the ceiling instead.
  RetryOptions opts;
  opts.initial_backoff_minutes = 0.5;
  opts.backoff_multiplier = 2.0;
  opts.max_backoff_minutes = 8.0;
  EXPECT_DOUBLE_EQ(BackoffMinutes(opts, 0), 0.5);
  EXPECT_DOUBLE_EQ(BackoffMinutes(opts, 1), 1.0);
  EXPECT_DOUBLE_EQ(BackoffMinutes(opts, 4), 8.0);
  for (int retry : {5, 100, 2000, 1000000000}) {
    double sleep = BackoffMinutes(opts, retry);
    EXPECT_TRUE(std::isfinite(sleep));
    EXPECT_DOUBLE_EQ(sleep, 8.0);
  }
}

TEST(RetryTest, JitterBoundedAndDeterministic) {
  RetryOptions opts;
  opts.initial_backoff_minutes = 2.0;
  opts.backoff_multiplier = 1.0;
  opts.max_backoff_minutes = 8.0;
  opts.jitter_frac = 0.25;
  opts.jitter_seed = 99;
  BackoffSchedule a(opts), b(opts);
  bool any_jittered = false;
  for (int i = 0; i < 64; ++i) {
    double sa = a.SleepMinutes(i);
    // Bounds: base 2.0 scaled into [1.5, 2.5).
    EXPECT_GE(sa, 2.0 * (1.0 - opts.jitter_frac));
    EXPECT_LT(sa, 2.0 * (1.0 + opts.jitter_frac));
    // Deterministic: an identically-seeded schedule replays exactly.
    EXPECT_DOUBLE_EQ(sa, b.SleepMinutes(i));
    any_jittered |= sa != 2.0;
  }
  EXPECT_TRUE(any_jittered);
}

TEST(RetryTest, ZeroJitterIsBitIdenticalToUnjittered) {
  RetryOptions opts;  // jitter_frac defaults to 0
  BackoffSchedule schedule(opts);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(schedule.SleepMinutes(i), BackoffMinutes(opts, i));
  }
}

TEST(RetryTest, JitteredSleepsAreChargedToTheClock) {
  RetryOptions opts;
  opts.max_attempts = 4;
  opts.jitter_frac = 0.5;
  double charged = 0;
  RetryStats stats;
  (void)RetryWithBackoff(
      opts, []() { return Status::Unavailable("down"); },
      [&](double minutes) { charged += minutes; }, &stats);
  EXPECT_EQ(stats.retries, 3);
  EXPECT_DOUBLE_EQ(charged, stats.backoff_minutes);
  EXPECT_GT(charged, 0.0);
}

TEST(RetryTest, ResultFlavorReturnsValue) {
  int calls = 0;
  RetryStats stats;
  Result<int> r = RetryResultWithBackoff<int>(
      RetryOptions{},
      [&]() -> Result<int> {
        ++calls;
        if (calls < 2) return Status::Unavailable("flaky");
        return 42;
      },
      nullptr, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(stats.retries, 1);
}

TEST(TimerWheelTest, PopsBatchesInTimeOrderSortedById) {
  TimerWheel wheel(0.5, 4);
  wheel.Schedule(7, 10.0);
  wheel.Schedule(3, 10.0);
  wheel.Schedule(11, 10.2);  // same 0.5-minute tick as 10.0
  wheel.Schedule(5, 4.0);
  EXPECT_EQ(wheel.size(), 4u);

  std::vector<int64_t> first = wheel.PopDueBatch();
  EXPECT_EQ(first, (std::vector<int64_t>{5}));
  EXPECT_DOUBLE_EQ(wheel.now_minutes(), 4.0);

  std::vector<int64_t> second = wheel.PopDueBatch();
  EXPECT_EQ(second, (std::vector<int64_t>{3, 7, 11}));
  EXPECT_DOUBLE_EQ(wheel.now_minutes(), 10.0);

  EXPECT_TRUE(wheel.PopDueBatch().empty());
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, PastDueLandsInNextTickNeverBackwards) {
  TimerWheel wheel(1.0, 2);
  wheel.Schedule(1, 5.0);
  (void)wheel.PopDueBatch();
  EXPECT_DOUBLE_EQ(wheel.now_minutes(), 5.0);
  wheel.Schedule(2, 3.0);  // in the past: fires at the next tick instead
  std::vector<int64_t> due = wheel.PopDueBatch();
  EXPECT_EQ(due, (std::vector<int64_t>{2}));
  EXPECT_DOUBLE_EQ(wheel.now_minutes(), 6.0);
}

TEST(TimerWheelTest, OverflowBeyondOneRevolutionCascadesIn) {
  TimerWheel wheel(1.0, 2, /*wheel_ticks=*/8);
  wheel.Schedule(1, 3.0);
  wheel.Schedule(2, 100.0);   // far beyond the 8-tick near wheel
  wheel.Schedule(3, 5000.0);  // far beyond even that
  EXPECT_EQ(wheel.size(), 3u);
  EXPECT_EQ(wheel.PopDueBatch(), (std::vector<int64_t>{1}));
  EXPECT_EQ(wheel.PopDueBatch(), (std::vector<int64_t>{2}));
  EXPECT_DOUBLE_EQ(wheel.now_minutes(), 100.0);
  EXPECT_EQ(wheel.PopDueBatch(), (std::vector<int64_t>{3}));
  EXPECT_DOUBLE_EQ(wheel.now_minutes(), 5000.0);
}

TEST(TimerWheelTest, BatchOrderIndependentOfInsertionAndShardLayout) {
  // Two wheels with different shard counts and reversed insertion order
  // must pop identical batches: determinism cannot leak scheduling detail.
  TimerWheel a(0.5, 1), b(0.5, 16);
  for (int64_t id = 0; id < 100; ++id) a.Schedule(id, 7.0 + (id % 3));
  for (int64_t id = 99; id >= 0; --id) b.Schedule(id, 7.0 + (id % 3));
  for (;;) {
    std::vector<int64_t> ba = a.PopDueBatch();
    std::vector<int64_t> bb = b.PopDueBatch();
    EXPECT_EQ(ba, bb);
    if (ba.empty()) break;
  }
}

TEST(CircuitBreakerTest, ClosedTripsOpenAtThreshold) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  opts.open_minutes = 10.0;
  CircuitBreaker breaker(opts);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(0.0));
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(1.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure(2.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trip_count(), 1);
  EXPECT_FALSE(breaker.AllowRequest(5.0));
  EXPECT_DOUBLE_EQ(breaker.reopen_minutes(), 12.0);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_minutes = 10.0;
  CircuitBreaker breaker(opts);
  breaker.RecordFailure(0.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // Cooldown elapsed: one probe allowed, a second refused.
  EXPECT_TRUE(breaker.AllowRequest(10.0));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest(10.0));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(10.0));
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensAndRearmsCooldown) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_minutes = 10.0;
  CircuitBreaker breaker(opts);
  breaker.RecordFailure(0.0);
  EXPECT_TRUE(breaker.AllowRequest(10.0));
  breaker.RecordFailure(10.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trip_count(), 2);
  EXPECT_FALSE(breaker.AllowRequest(15.0));
  EXPECT_DOUBLE_EQ(breaker.reopen_minutes(), 20.0);
  EXPECT_TRUE(breaker.AllowRequest(20.0));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.NextU64() != b.NextU64());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalHasRoughlyUnitMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> w{0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(MathUtilTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 6}), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(MathUtilTest, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(MathUtilTest, MinMaxScaleClampsAndScales) {
  EXPECT_DOUBLE_EQ(MinMaxScale(5, 0, 10), 0.5);
  EXPECT_DOUBLE_EQ(MinMaxScale(-1, 0, 10), 0.0);
  EXPECT_DOUBLE_EQ(MinMaxScale(11, 0, 10), 1.0);
  EXPECT_DOUBLE_EQ(MinMaxScale(5, 5, 5), 0.0);  // degenerate range
}

TEST(MathUtilTest, SigmoidSymmetricAndStable) {
  EXPECT_DOUBLE_EQ(Sigmoid(0), 0.5);
  EXPECT_NEAR(Sigmoid(3) + Sigmoid(-3), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(1000), 1.0, 1e-12);  // no overflow
  EXPECT_NEAR(Sigmoid(-1000), 0.0, 1e-12);
}

TEST(MathUtilTest, EmpiricalCdfMonotone) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  auto cdf = EmpiricalCdf(xs, 5);
  ASSERT_EQ(cdf.size(), 5u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LE(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t("demo", {"a", "long-header"});
  t.AddRow({"x", "1"});
  t.AddRow({"yy", "2"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| a  | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| x  | 1           |"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace streamtune
