// Cross-cutting tuner invariants and failure injection.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/conttune.h"
#include "baselines/ds2.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/random_dag.h"

namespace streamtune {
namespace {

sim::FlinkEngine EngineFor(const JobGraph& job, uint64_t seed = 5) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  sim::SimConfig cfg;
  cfg.noise_seed = seed;
  return sim::FlinkEngine(job, model, cfg);
}

class TunerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TunerPropertyTest, OutcomesAreInternallyConsistent) {
  auto jobs = workloads::GenerateRandomDags(2, GetParam() * 41 + 9);
  for (const JobGraph& job : jobs) {
    for (int which = 0; which < 2; ++which) {
      sim::FlinkEngine engine = EngineFor(job, GetParam());
      std::vector<int> ones(job.num_operators(), 1);
      ASSERT_TRUE(engine.Deploy(ones).ok());
      engine.ScaleAllSources(6.0);
      std::unique_ptr<baselines::Tuner> tuner;
      if (which == 0) {
        tuner = std::make_unique<baselines::Ds2Tuner>();
      } else {
        tuner = std::make_unique<baselines::ContTuneTuner>();
      }
      auto outcome = tuner->Tune(&engine);
      ASSERT_TRUE(outcome.ok()) << tuner->name();
      // Final parallelism matches the engine's deployed state.
      EXPECT_EQ(outcome->final_parallelism, engine.parallelism());
      int total = 0;
      for (int p : outcome->final_parallelism) {
        EXPECT_GE(p, 1);
        EXPECT_LE(p, engine.max_parallelism());
        total += p;
      }
      EXPECT_EQ(outcome->total_parallelism, total);
      EXPECT_GE(outcome->reconfigurations, 0);
      EXPECT_GE(outcome->iterations, 1);
      // Stabilization waits: at least 10 minutes per reconfiguration.
      EXPECT_GE(outcome->tuning_minutes,
                10.0 * outcome->reconfigurations - 1e-9);
    }
  }
}

TEST_P(TunerPropertyTest, TunersNeverExceedPhysicalLimits) {
  auto jobs = workloads::GenerateRandomDags(2, GetParam() * 53 + 3);
  for (const JobGraph& job : jobs) {
    sim::FlinkEngine engine = EngineFor(job, GetParam());
    std::vector<int> ones(job.num_operators(), 1);
    ASSERT_TRUE(engine.Deploy(ones).ok());
    engine.ScaleAllSources(10.0);  // extreme demand
    baselines::Ds2Tuner ds2;
    auto outcome = ds2.Tune(&engine);
    ASSERT_TRUE(outcome.ok());
    for (int p : outcome->final_parallelism) {
      EXPECT_LE(p, engine.max_parallelism());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TunerPropertyTest,
                         ::testing::Values(1, 2, 3));

TEST(TunerFailureInjectionTest, StreamTuneRequiresDeployedEngine) {
  // Minimal bundle.
  std::vector<JobGraph> jobs = workloads::GenerateRandomDags(2, 77);
  core::HistoryOptions hist;
  hist.samples_per_job = 4;
  auto corpus = core::CollectHistory(jobs, hist);
  core::PretrainOptions pre;
  pre.use_clustering = false;
  pre.epochs = 3;
  auto bundle_res = core::Pretrainer(pre).Run(std::move(corpus));
  ASSERT_TRUE(bundle_res.ok());
  auto bundle =
      std::make_shared<core::PretrainedBundle>(std::move(*bundle_res));

  sim::FlinkEngine engine = EngineFor(jobs[0]);
  core::StreamTuneTuner tuner(bundle);
  // Not deployed: the initial measurement must fail cleanly, not crash.
  auto outcome = tuner.Tune(&engine);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TunerFailureInjectionTest, Ds2RequiresDeployedEngine) {
  auto jobs = workloads::GenerateRandomDags(1, 78);
  sim::FlinkEngine engine = EngineFor(jobs[0]);
  baselines::Ds2Tuner ds2;
  auto outcome = ds2.Tune(&engine);
  EXPECT_FALSE(outcome.ok());
}

TEST(TunerFailureInjectionTest, ContTuneRequiresDeployedEngine) {
  auto jobs = workloads::GenerateRandomDags(1, 79);
  sim::FlinkEngine engine = EngineFor(jobs[0]);
  baselines::ContTuneTuner conttune;
  auto outcome = conttune.Tune(&engine);
  EXPECT_FALSE(outcome.ok());
}

TEST(TunerPropertyTest2, StreamTuneDeterministicAcrossRuns) {
  // Same bundle + same engine seed => identical tuning outcome.
  std::vector<JobGraph> jobs = workloads::GenerateRandomDags(3, 91);
  core::HistoryOptions hist;
  hist.samples_per_job = 8;
  auto corpus = core::CollectHistory(jobs, hist);
  core::PretrainOptions pre;
  pre.use_clustering = false;
  pre.epochs = 6;
  auto bundle_res = core::Pretrainer(pre).Run(std::move(corpus));
  ASSERT_TRUE(bundle_res.ok());
  auto bundle =
      std::make_shared<core::PretrainedBundle>(std::move(*bundle_res));

  auto run_once = [&]() {
    sim::FlinkEngine engine = EngineFor(jobs[0], 1234);
    std::vector<int> ones(jobs[0].num_operators(), 1);
    (void)engine.Deploy(ones);
    engine.ScaleAllSources(7.0);
    core::StreamTuneTuner tuner(bundle);
    auto outcome = tuner.Tune(&engine);
    return outcome.ok() ? outcome->final_parallelism : std::vector<int>{};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace streamtune
