// Tests for the cross-TU call graph: node and edge classification
// (resolved / ambiguous / external), ambiguity detection for same-name
// definitions, and SCC condensation order.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/call_graph.h"
#include "analysis/project_index.h"
#include "analysis/source_file.h"

namespace streamtune::analysis {
namespace {

std::vector<FileFacts> FactsFor(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<FileFacts> facts;
  for (const auto& [path, content] : files) {
    facts.push_back(ExtractFileFacts(SourceFile::FromContent(path, content)));
  }
  return facts;
}

// Two files, ten definitions. "Dup" is a free function in two unrelated
// stems and "Run" is a method of two different classes — both ambiguous.
// Ping/Pong are mutually recursive. "External" is never defined here.
std::vector<FileFacts> Corpus() {
  return FactsFor({
      {"src/a.cc",
       "int Beta() { return 1; }\n"
       "int Dup() { return 3; }\n"
       "int Alpha() { return Beta() + Gamma() + External(); }\n"
       "void Caller() { Run(); }\n"
       "void Widget::Run() { Alpha(); }\n"},
      {"src/b.cc",
       "int Gamma() { return 2; }\n"
       "int Dup() { return 4; }\n"
       "int Ping(int n) { return n <= 0 ? 0 : Pong(n - 1); }\n"
       "int Pong(int n) { return Ping(n - 1); }\n"
       "void Gadget::Run() { Ping(3); }\n"},
  });
}

TEST(CallGraphTest, NodeAndEdgeClassification) {
  std::vector<FileFacts> facts = Corpus();
  CallGraph graph = CallGraph::Build(facts);
  const CallGraphStats& s = graph.stats();

  EXPECT_EQ(s.functions, 10);
  // Beta, Dup, Alpha, Caller, Run, Gamma, Ping, Pong.
  EXPECT_EQ(s.nodes, 8);
  EXPECT_EQ(s.ambiguous_nodes, 2);

  // Alpha->Beta, Alpha->Gamma, Run->Alpha, Run->Ping, Ping->Pong,
  // Pong->Ping. A caller being ambiguous does not taint its out-edges.
  EXPECT_EQ(s.resolved_edges, 6);
  EXPECT_EQ(s.ambiguous_edges, 1);  // Caller -> Run
  EXPECT_EQ(s.external_edges, 1);   // Alpha -> External
}

TEST(CallGraphTest, AmbiguityByQualifierAndByStem) {
  std::vector<FileFacts> facts = Corpus();
  CallGraph graph = CallGraph::Build(facts);

  int run = graph.NodeId("Run");
  ASSERT_GE(run, 0);
  EXPECT_TRUE(graph.nodes()[run].ambiguous);  // Widget:: vs Gadget::
  EXPECT_EQ(graph.nodes()[run].defs.size(), 2u);

  int dup = graph.NodeId("Dup");
  ASSERT_GE(dup, 0);
  EXPECT_TRUE(graph.nodes()[dup].ambiguous);  // free defs in stems a and b

  int alpha = graph.NodeId("Alpha");
  ASSERT_GE(alpha, 0);
  EXPECT_FALSE(graph.nodes()[alpha].ambiguous);

  EXPECT_EQ(graph.NodeId("External"), -1);
  EXPECT_EQ(graph.NodeId("NoSuchFunction"), -1);
}

TEST(CallGraphTest, HeaderAndSourcePairStaysUnambiguous) {
  // An inline definition in foo.h plus an overload in foo.cc share one
  // stem: name-based resolution treats them as one function.
  std::vector<FileFacts> facts = FactsFor({
      {"src/foo.h", "inline int Twice(int x) { return 2 * x; }\n"},
      {"src/foo.cc", "int Twice(long x) { return static_cast<int>(2 * x); }\n"},
  });
  CallGraph graph = CallGraph::Build(facts);
  int id = graph.NodeId("Twice");
  ASSERT_GE(id, 0);
  EXPECT_FALSE(graph.nodes()[id].ambiguous);
  EXPECT_EQ(graph.nodes()[id].defs.size(), 2u);
  EXPECT_EQ(graph.stats().ambiguous_nodes, 0);
}

TEST(CallGraphTest, SccCondensationIsBottomUp) {
  std::vector<FileFacts> facts = Corpus();
  CallGraph graph = CallGraph::Build(facts);
  const CallGraphStats& s = graph.stats();

  // {Ping, Pong} collapse; everything else is a singleton.
  EXPECT_EQ(s.scc_count, 7);
  EXPECT_EQ(s.nontrivial_sccs, 1);

  int ping = graph.NodeId("Ping");
  int pong = graph.NodeId("Pong");
  ASSERT_GE(ping, 0);
  ASSERT_GE(pong, 0);
  EXPECT_EQ(graph.nodes()[ping].scc, graph.nodes()[pong].scc);

  const auto& members = graph.sccs()[graph.nodes()[ping].scc];
  EXPECT_EQ(members.size(), 2u);

  // Ascending scc id is a valid bottom-up propagation order: a callee's
  // SCC is numbered no later than its caller's.
  int alpha = graph.NodeId("Alpha");
  int beta = graph.NodeId("Beta");
  int gamma = graph.NodeId("Gamma");
  EXPECT_LT(graph.nodes()[beta].scc, graph.nodes()[alpha].scc);
  EXPECT_LT(graph.nodes()[gamma].scc, graph.nodes()[alpha].scc);
  int run = graph.NodeId("Run");
  EXPECT_LT(graph.nodes()[alpha].scc, graph.nodes()[run].scc);
  EXPECT_LT(graph.nodes()[ping].scc, graph.nodes()[run].scc);
}

TEST(CallGraphTest, EmptyCorpus) {
  std::vector<FileFacts> facts;
  CallGraph graph = CallGraph::Build(facts);
  EXPECT_EQ(graph.stats().nodes, 0);
  EXPECT_EQ(graph.stats().scc_count, 0);
  EXPECT_EQ(graph.NodeId("Anything"), -1);
}

}  // namespace
}  // namespace streamtune::analysis
