// Numeric-equivalence pins on the ML pipeline: the training and inference
// paths must be bit-deterministic. Every test here asserts BIT-identical
// numerics — full Pretrainer::Run output (serialized weights round-trip
// doubles exactly at precision 17) across thread counts, the classifier
// training loop against a hand-rolled replica, and the bundle's inference
// paths — sequential and batched.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/serialization.h"
#include "ml/nn_classifier.h"
#include "ml/tape.h"
#include "workloads/nexmark.h"

namespace streamtune::core {
namespace {

std::vector<HistoryRecord> NexmarkCorpus() {
  std::vector<JobGraph> jobs;
  for (workloads::NexmarkQuery q : workloads::AllNexmarkQueries()) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  HistoryOptions opts;
  opts.samples_per_job = 4;
  return CollectHistory(jobs, opts);
}

PretrainOptions FastOptions() {
  PretrainOptions opts;
  opts.k = 2;
  opts.epochs = 4;
  opts.hidden_dim = 12;
  opts.gnn_layers = 2;
  return opts;
}

std::string SerializedBundle(const PretrainedBundle& bundle) {
  std::ostringstream os;
  Status s = WriteBundleBody(os, bundle);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return os.str();
}

// A full pre-training run — GED clustering, per-cluster GNN+head training,
// every epoch and Adam step — produces byte-identical serialized weights at
// any thread count (every per-cluster RNG stream is drawn up front, and
// every kernel is deterministic under a fixed dispatch).
TEST(MlEquivalenceTest, PretrainerRunBitIdenticalAcrossThreadCounts) {
  std::vector<HistoryRecord> corpus = NexmarkCorpus();

  PretrainOptions serial_opts = FastOptions();
  serial_opts.num_threads = 1;
  auto serial = Pretrainer(serial_opts).Run(corpus);
  ASSERT_TRUE(serial.ok());
  const std::string reference = SerializedBundle(*serial);
  ASSERT_FALSE(reference.empty());

  for (int threads : {2, 8}) {
    PretrainOptions opts = FastOptions();
    opts.num_threads = threads;
    auto bundle = Pretrainer(opts).Run(corpus);
    ASSERT_TRUE(bundle.ok());
    EXPECT_EQ(SerializedBundle(*bundle), reference)
        << "training diverged from the serial run at num_threads=" << threads;
  }
}

// AgnosticEmbeddings runs on a thread-local tape: the embeddings must match
// a direct tape forward of the frozen encoder bit-for-bit, with the
// mean-rate skip connection appended.
TEST(MlEquivalenceTest, AgnosticEmbeddingsMatchDirectTapeForward) {
  std::vector<HistoryRecord> corpus = NexmarkCorpus();
  PretrainOptions opts = FastOptions();
  auto bundle = Pretrainer(opts).Run(corpus);
  ASSERT_TRUE(bundle.ok());

  const FeatureEncoder& fe = bundle->feature_encoder();
  for (const HistoryRecord& rec : bundle->records()) {
    const int c = bundle->AssignCluster(rec.graph);
    ml::Matrix got =
        bundle->AgnosticEmbeddings(c, rec.graph, rec.source_rates);

    // Reference: one fresh tape over the same encoder and features.
    ml::Matrix features = ml::Matrix::FromRows(
        fe.EncodeGraphWithRates(rec.graph, rec.source_rates));
    ml::GraphContext ctx = ml::GraphContext::Build(rec.graph);
    ml::Tape tape;
    const ml::Matrix& emb = tape.value(
        bundle->cluster(c).encoder.ForwardAgnostic(&tape, ctx, features));
    const int n = rec.graph.num_operators();
    const int r_dim = FeatureEncoder::kRateFeatures;
    ASSERT_EQ(got.rows(), n);
    ASSERT_EQ(got.cols(), emb.cols() + r_dim);
    for (int v = 0; v < n; ++v) {
      for (int j = 0; j < emb.cols(); ++j) {
        EXPECT_EQ(got.at(v, j), emb.at(v, j))
            << rec.graph.name() << " op " << v << " dim " << j;
      }
    }
  }
}

// The cross-job batched inference path must be a pure throughput change:
// every embedding matrix it returns — including the appended rate block —
// is bit-identical to the sequential per-job path.
TEST(MlEquivalenceTest, BatchedAgnosticEmbeddingsMatchSequential) {
  std::vector<HistoryRecord> corpus = NexmarkCorpus();
  PretrainOptions opts = FastOptions();
  auto bundle = Pretrainer(opts).Run(corpus);
  ASSERT_TRUE(bundle.ok());

  for (int c = 0; c < bundle->num_clusters(); ++c) {
    // Batch all records of the cluster at once (duplicate graphs included —
    // they exercise the context dedup).
    std::vector<PretrainedBundle::EmbeddingQuery> queries;
    std::vector<const HistoryRecord*> batched_recs;
    for (int idx : bundle->cluster(c).record_indices) {
      const HistoryRecord& rec = bundle->records()[idx];
      queries.push_back(
          PretrainedBundle::EmbeddingQuery{&rec.graph, &rec.source_rates});
      batched_recs.push_back(&rec);
    }
    ASSERT_FALSE(queries.empty());
    std::vector<ml::Matrix> batched =
        bundle->BatchedAgnosticEmbeddings(c, queries);
    ASSERT_EQ(batched.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const HistoryRecord& rec = *batched_recs[i];
      ml::Matrix seq =
          bundle->AgnosticEmbeddings(c, rec.graph, rec.source_rates);
      ASSERT_TRUE(batched[i].same_shape(seq)) << rec.graph.name();
      for (size_t k = 0; k < seq.size(); ++k) {
        EXPECT_EQ(batched[i].data()[k], seq.data()[k])
            << rec.graph.name() << " entry " << k;
      }
    }
  }
}

// NnClassifier::Fit runs on a persistent tape; replicating the training
// loop by hand must land on bit-identical predictions.
TEST(MlEquivalenceTest, NnClassifierFitMatchesTapeLoop) {
  const int dim = 6;
  ml::NnClassifierConfig cfg;
  cfg.hidden_dim = 10;
  cfg.epochs = 30;
  std::vector<ml::LabeledSample> data;
  Rng rng(3);
  for (int i = 0; i < 24; ++i) {
    ml::LabeledSample s;
    for (int j = 0; j < dim; ++j) s.embedding.push_back(rng.Uniform());
    s.parallelism = 1 + static_cast<int>(i % 8);
    s.label = s.parallelism < 4 ? 1 : 0;
    data.push_back(std::move(s));
  }
  ml::NnClassifier classifier(dim, cfg);
  ASSERT_TRUE(classifier.Fit(data).ok());

  // Reference: the Fit loop, replicated verbatim on a local tape.
  const int n = static_cast<int>(data.size());
  ml::Matrix x(n, dim + 1);
  ml::Matrix y(n, 1);
  ml::Matrix mask(n, 1, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) x.at(i, j) = data[i].embedding[j];
    x.at(i, dim) = data[i].parallelism / cfg.parallelism_scale;
    y.at(i, 0) = data[i].label == 1 ? 1.0 : 0.0;
  }
  Rng init(cfg.seed);
  ml::Mlp mlp({dim + 1, cfg.hidden_dim, cfg.hidden_dim, 1},
              ml::Activation::kRelu, &init);
  ml::Adam opt(mlp.Params(), cfg.learning_rate);
  ml::Tape tape;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    tape.Reset();
    ml::Tape::Ref logits = mlp.Forward(&tape, tape.Constant(&x));
    ml::Tape::Ref loss = tape.BceWithLogitsMasked(logits, &y, &mask);
    tape.Backward(loss);
    opt.Step();
  }

  for (const ml::LabeledSample& s : data) {
    ml::Matrix probe(1, dim + 1);
    for (int j = 0; j < dim; ++j) probe.at(0, j) = s.embedding[j];
    probe.at(0, dim) = s.parallelism / cfg.parallelism_scale;
    tape.Reset();
    ml::Tape::Ref out = mlp.Forward(&tape, tape.Constant(&probe));
    double expected = Sigmoid(tape.value(out).at(0, 0));
    EXPECT_EQ(classifier.PredictProbability(s.embedding, s.parallelism),
              expected);
  }
}

}  // namespace
}  // namespace streamtune::core
