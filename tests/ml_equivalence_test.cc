// Old-vs-new engine equivalence: the tape refactor must be a pure
// performance change. Every test here asserts BIT-identical numerics
// between the Var shim and the tape engine — full Pretrainer::Run output
// (serialized weights round-trip doubles exactly at precision 17), the
// classifier training loop, and the bundle's inference paths — serial and
// multi-threaded.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/serialization.h"
#include "ml/nn_classifier.h"
#include "workloads/nexmark.h"

namespace streamtune::core {
namespace {

std::vector<HistoryRecord> NexmarkCorpus() {
  std::vector<JobGraph> jobs;
  for (workloads::NexmarkQuery q : workloads::AllNexmarkQueries()) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  HistoryOptions opts;
  opts.samples_per_job = 4;
  return CollectHistory(jobs, opts);
}

PretrainOptions FastOptions() {
  PretrainOptions opts;
  opts.k = 2;
  opts.epochs = 4;
  opts.hidden_dim = 12;
  opts.gnn_layers = 2;
  return opts;
}

std::string SerializedBundle(const PretrainedBundle& bundle) {
  std::ostringstream os;
  Status s = WriteBundleBody(os, bundle);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return os.str();
}

// The acceptance gate of the refactor: a full pre-training run — GED
// clustering, per-cluster GNN+head training, every epoch and Adam step —
// produces byte-identical serialized weights on the old Var engine and on
// the tape engine, at any thread count.
TEST(MlEquivalenceTest, PretrainerRunBitIdenticalOldVsTape) {
  std::vector<HistoryRecord> corpus = NexmarkCorpus();

  PretrainOptions old_opts = FastOptions();
  old_opts.use_tape = false;
  old_opts.num_threads = 1;
  auto old_bundle = Pretrainer(old_opts).Run(corpus);
  ASSERT_TRUE(old_bundle.ok());
  const std::string reference = SerializedBundle(*old_bundle);
  ASSERT_FALSE(reference.empty());

  for (int threads : {1, 8}) {
    PretrainOptions tape_opts = FastOptions();
    tape_opts.use_tape = true;
    tape_opts.num_threads = threads;
    auto tape_bundle = Pretrainer(tape_opts).Run(corpus);
    ASSERT_TRUE(tape_bundle.ok());
    EXPECT_EQ(SerializedBundle(*tape_bundle), reference)
        << "tape engine diverged from the Var engine at num_threads="
        << threads;
  }
}

// The Var shim itself must also be thread-count independent, so the two
// engines can be compared at any parallelism (guards the test above).
TEST(MlEquivalenceTest, OldEngineThreadCountIndependent) {
  std::vector<HistoryRecord> corpus = NexmarkCorpus();
  PretrainOptions opts = FastOptions();
  opts.use_tape = false;
  opts.num_threads = 1;
  auto serial = Pretrainer(opts).Run(corpus);
  ASSERT_TRUE(serial.ok());
  opts.num_threads = 8;
  auto parallel = Pretrainer(opts).Run(corpus);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(SerializedBundle(*serial), SerializedBundle(*parallel));
}

// AgnosticEmbeddings went from the Var engine to a thread-local tape: the
// embeddings must match the Var path bit-for-bit.
TEST(MlEquivalenceTest, AgnosticEmbeddingsMatchVarPath) {
  std::vector<HistoryRecord> corpus = NexmarkCorpus();
  PretrainOptions opts = FastOptions();
  auto bundle = Pretrainer(opts).Run(corpus);
  ASSERT_TRUE(bundle.ok());

  const FeatureEncoder& fe = bundle->feature_encoder();
  for (const HistoryRecord& rec : bundle->records()) {
    const int c = bundle->AssignCluster(rec.graph);
    ml::Matrix got =
        bundle->AgnosticEmbeddings(c, rec.graph, rec.source_rates);

    // Var-engine reference, including the mean-rate skip connection.
    ml::Matrix features = ml::Matrix::FromRows(
        fe.EncodeGraphWithRates(rec.graph, rec.source_rates));
    ml::Var emb =
        bundle->cluster(c).encoder.ForwardAgnostic(rec.graph, features);
    const int n = rec.graph.num_operators();
    const int r_dim = FeatureEncoder::kRateFeatures;
    ASSERT_EQ(got.rows(), n);
    ASSERT_EQ(got.cols(), emb->value.cols() + r_dim);
    for (int v = 0; v < n; ++v) {
      for (int j = 0; j < emb->value.cols(); ++j) {
        EXPECT_EQ(got.at(v, j), emb->value.at(v, j))
            << rec.graph.name() << " op " << v << " dim " << j;
      }
    }
  }
}

// NnClassifier::Fit moved to a persistent tape; replicating the original
// Var training loop must land on bit-identical predictions.
TEST(MlEquivalenceTest, NnClassifierFitMatchesVarLoop) {
  const int dim = 6;
  ml::NnClassifierConfig cfg;
  cfg.hidden_dim = 10;
  cfg.epochs = 30;
  std::vector<ml::LabeledSample> data;
  Rng rng(3);
  for (int i = 0; i < 24; ++i) {
    ml::LabeledSample s;
    for (int j = 0; j < dim; ++j) s.embedding.push_back(rng.Uniform());
    s.parallelism = 1 + static_cast<int>(i % 8);
    s.label = s.parallelism < 4 ? 1 : 0;
    data.push_back(std::move(s));
  }
  ml::NnClassifier classifier(dim, cfg);
  ASSERT_TRUE(classifier.Fit(data).ok());

  // Reference: the pre-refactor Fit, verbatim, on the Var engine.
  const int n = static_cast<int>(data.size());
  ml::Matrix x(n, dim + 1);
  ml::Matrix y(n, 1);
  ml::Matrix mask(n, 1, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) x.at(i, j) = data[i].embedding[j];
    x.at(i, dim) = data[i].parallelism / cfg.parallelism_scale;
    y.at(i, 0) = data[i].label == 1 ? 1.0 : 0.0;
  }
  Rng init(cfg.seed);
  ml::Mlp mlp({dim + 1, cfg.hidden_dim, cfg.hidden_dim, 1},
              ml::Activation::kRelu, &init);
  ml::Adam opt(mlp.Params(), cfg.learning_rate);
  ml::Var xs = ml::Constant(x);
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    ml::Var logits = mlp.Forward(xs);
    ml::Var loss = ml::BceWithLogitsMasked(logits, y, mask);
    ml::Backward(loss);
    opt.Step();
  }

  for (const ml::LabeledSample& s : data) {
    ml::Matrix probe(1, dim + 1);
    for (int j = 0; j < dim; ++j) probe.at(0, j) = s.embedding[j];
    probe.at(0, dim) = s.parallelism / cfg.parallelism_scale;
    ml::Var out = mlp.Forward(ml::Constant(probe));
    double expected = Sigmoid(out->value.at(0, 0));
    EXPECT_EQ(classifier.PredictProbability(s.embedding, s.parallelism),
              expected);
  }
}

}  // namespace
}  // namespace streamtune::core
