// Tests for the multi-job tuning control plane: admission primitives,
// scheduler edge cases (zero-job fleet, single job, all-quarantined),
// backpressure engage/release, the chaos-storm determinism contract
// (healthy jobs bit-identical to a chaos-free run), and a 10k-job
// concurrent smoke that doubles as the TSan target.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "controlplane/control_plane.h"
#include "sim/chaos_engine.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

namespace streamtune::controlplane {
namespace {

std::vector<core::HistoryRecord> SampleCorpus(int samples_per_job = 5) {
  std::vector<JobGraph> jobs;
  jobs.push_back(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                            workloads::Engine::kFlink));
  jobs.push_back(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                            workloads::Engine::kFlink));
  jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 1));
  core::HistoryOptions opts;
  opts.samples_per_job = samples_per_job;
  return core::CollectHistory(jobs, opts);
}

kb::KbUpdateOptions SmallKbOptions() {
  kb::KbUpdateOptions o;
  o.pretrain.k = 2;
  o.pretrain.epochs = 2;
  o.pretrain.hidden_dim = 16;
  o.min_new_records = 1000;
  return o;
}

std::unique_ptr<kb::KbService> SmallService() {
  auto service = kb::KbService::Build(SampleCorpus(), SmallKbOptions());
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

JobGraph FleetGraph(int i) {
  switch (i % 3) {
    case 0:
      return workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                        workloads::Engine::kFlink);
    case 1:
      return workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                        workloads::Engine::kFlink);
    default:
      return workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 1);
  }
}

// One fleet: per-job inner Flink engines (deployed at all-ones) optionally
// wrapped in per-job chaos from a FleetFaultPlan.
struct Fleet {
  std::vector<std::unique_ptr<sim::StreamEngine>> inner;
  std::vector<std::unique_ptr<sim::ChaosEngine>> chaos;

  sim::StreamEngine* engine(int i) {
    return chaos.empty() ? inner[i].get()
                         : static_cast<sim::StreamEngine*>(chaos[i].get());
  }
};

Fleet MakeFleet(int jobs, const sim::FleetFaultPlan* storm) {
  Fleet fleet;
  for (int i = 0; i < jobs; ++i) {
    JobGraph job = FleetGraph(i);
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    sim::SimConfig cfg;
    cfg.noise_seed = 1000 + static_cast<uint64_t>(i) * 7919;
    auto engine = std::make_unique<sim::FlinkEngine>(job, model, cfg);
    engine->ScaleAllSources(4.0);
    std::vector<int> ones(job.num_operators(), 1);
    EXPECT_TRUE(engine->Deploy(ones).ok());
    fleet.inner.push_back(std::move(engine));
  }
  if (storm != nullptr) {
    for (int i = 0; i < jobs; ++i) {
      fleet.chaos.push_back(std::make_unique<sim::ChaosEngine>(
          fleet.inner[i].get(), storm->PlanFor(i)));
    }
  }
  return fleet;
}

ControlPlaneOptions FastOptions() {
  ControlPlaneOptions opts;
  opts.num_threads = 4;
  opts.decision_period_minutes = 30;
  opts.fault.decision_deadline_minutes = 10000;  // containment off by default
  opts.fault.breaker.failure_threshold = 3;
  opts.fault.breaker.open_minutes = 30;
  opts.fault.max_breaker_trips = 2;
  opts.streamtune.max_iterations = 8;
  opts.streamtune.warmup_records = 40;
  return opts;
}

TEST(AdmissionTest, TokenBucketCapsAndRefills) {
  TokenBucketOptions o;
  o.capacity = 2;
  o.refill_per_minute = 0.5;
  TokenBucket bucket(o);
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));  // drained, no time passed
  EXPECT_TRUE(bucket.TryAcquire(2.0));  // 1 token refilled
  EXPECT_NEAR(bucket.Available(2.0), 0.0, 1e-12);
  EXPECT_NEAR(bucket.Available(100.0), 2.0, 1e-12);  // capped at capacity
}

TEST(AdmissionTest, WatermarkGateHasHysteresis) {
  WatermarkGate gate(WatermarkOptions{4, 1});
  EXPECT_FALSE(gate.Update(3));  // below high: stays released
  EXPECT_TRUE(gate.Update(4));   // engages at high
  EXPECT_TRUE(gate.Update(2));   // above low: stays engaged
  EXPECT_FALSE(gate.Update(1));  // releases at low
  EXPECT_EQ(gate.engage_count(), 1);
  EXPECT_EQ(gate.release_count(), 1);
  EXPECT_TRUE(gate.Update(7));
  EXPECT_EQ(gate.engage_count(), 2);
}

TEST(ControlPlaneTest, ZeroJobFleetReturnsEmptyReport) {
  ControlPlane plane(nullptr, FastOptions());
  auto report = plane.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->jobs, 0);
  EXPECT_EQ(report->decisions, 0);
  EXPECT_EQ(report->rounds, 0);
  EXPECT_EQ(report->converged, 0);
}

TEST(ControlPlaneTest, SingleFullJobConvergesAndAdmitsToKb) {
  auto service = SmallService();
  const long long version_before = service->Stats().snapshot_version;
  ControlPlaneOptions opts = FastOptions();
  opts.full_admission.capacity = 4;
  ControlPlane plane(service.get(), opts);

  Fleet fleet = MakeFleet(1, nullptr);
  ASSERT_TRUE(plane.AddJob(0, fleet.engine(0)).ok());
  auto report = plane.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->jobs, 1);
  EXPECT_EQ(report->full_jobs, 1);
  EXPECT_EQ(report->converged, 1);
  EXPECT_GT(report->decisions, 0);
  EXPECT_EQ(report->kb_admitted, 1);
  EXPECT_EQ(service->Stats().snapshot_version, version_before + 1);
  ASSERT_EQ(report->job_reports.size(), 1u);
  EXPECT_NE(report->job_reports[0].trajectory_hash, 0u);
}

TEST(ControlPlaneTest, AdmissionControlShedsOverflowInJobOrder) {
  auto service = SmallService();
  ControlPlaneOptions opts = FastOptions();
  opts.full_admission.capacity = 2;
  ControlPlane plane(service.get(), opts);

  Fleet fleet = MakeFleet(6, nullptr);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(plane.AddJob(i, fleet.engine(i)).ok());
  }
  // The shed boundary is the AddJob order, nothing else.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(plane.job(i)->mode(), i < 2 ? JobMode::kFull : JobMode::kShed)
        << "job " << i;
  }
  auto report = plane.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->full_jobs, 2);
  EXPECT_EQ(report->shed_jobs, 4);
  EXPECT_EQ(report->converged, 6);
}

TEST(ControlPlaneTest, RejectsDuplicateAndUndeployedJobs) {
  ControlPlane plane(nullptr, FastOptions());
  Fleet fleet = MakeFleet(1, nullptr);
  ASSERT_TRUE(plane.AddJob(0, fleet.engine(0)).ok());
  EXPECT_FALSE(plane.AddJob(0, fleet.engine(0)).ok());  // duplicate id

  JobGraph job = FleetGraph(0);
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  sim::FlinkEngine undeployed(job, model);
  EXPECT_FALSE(plane.AddJob(1, &undeployed).ok());
}

TEST(ControlPlaneTest, AllJobsQuarantinedStillTerminates) {
  // Engines whose Measure never succeeds: every decision fails, breakers
  // trip, the watchdog quarantines each job — and Run() terminates without
  // the round-cap hammer.
  auto service = SmallService();
  ControlPlaneOptions opts = FastOptions();
  opts.full_admission.capacity = 8;
  ControlPlane plane(service.get(), opts);

  sim::FaultPlan broken;
  broken.measure_dropout_prob = 1.0;
  broken.max_consecutive_dropouts = 1 << 20;
  Fleet fleet = MakeFleet(4, nullptr);
  std::vector<std::unique_ptr<sim::ChaosEngine>> wrapped;
  for (int i = 0; i < 4; ++i) {
    broken.seed = 77 + static_cast<uint64_t>(i);
    wrapped.push_back(
        std::make_unique<sim::ChaosEngine>(fleet.inner[i].get(), broken));
    ASSERT_TRUE(plane.AddJob(i, wrapped[i].get()).ok());
  }
  auto report = plane.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->quarantined, 4);
  EXPECT_EQ(report->converged, 0);
  EXPECT_EQ(report->watchdog_terminations, 0);  // breakers did it, not the cap
  for (const JobReport& jr : report->job_reports) {
    EXPECT_GE(jr.breaker_trips, 2) << "job " << jr.id;
  }
}

TEST(ControlPlaneTest, BackpressureEngagesAndReleases) {
  auto service = SmallService();
  ControlPlaneOptions opts = FastOptions();
  opts.full_admission.capacity = 12;
  opts.backpressure = WatermarkOptions{4, 1};
  opts.kb_admit_batch = 1;  // slow writer: converging fleet outruns it
  ControlPlane plane(service.get(), opts);

  Fleet fleet = MakeFleet(12, nullptr);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(plane.AddJob(i, fleet.engine(i)).ok());
  }
  auto report = plane.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->converged, 12);
  EXPECT_GE(report->backpressure_engagements, 1);
  EXPECT_GE(report->backpressure_releases, 1);
  // Every enqueued admission eventually lands; nothing leaks in the queue.
  EXPECT_EQ(report->kb_admitted + report->kb_admit_failures +
                report->kb_dropped,
            12);
  EXPECT_GT(report->kb_admitted, 0);
}

TEST(ControlPlaneTest, HealthyJobsBitIdenticalUnderChaosStorm) {
  // The acceptance criterion: a 30% chaos storm must leave the untouched
  // 70% with trajectories bit-identical to a fully chaos-free run.
  constexpr int kJobs = 30;
  sim::FleetFaultPlan storm;
  storm.master_seed = 0xF1EE7;
  storm.fault_fraction = 0.3;
  sim::FleetFaultPlan calm = storm;
  calm.fault_fraction = 0.0;

  auto run = [&](const sim::FleetFaultPlan& plan) {
    auto service = SmallService();
    ControlPlaneOptions opts = FastOptions();
    opts.full_admission.capacity = 6;
    ControlPlane plane(service.get(), opts);
    Fleet fleet = MakeFleet(kJobs, &plan);
    for (int i = 0; i < kJobs; ++i) {
      EXPECT_TRUE(plane.AddJob(i, fleet.engine(i)).ok());
    }
    auto report = plane.Run();
    EXPECT_TRUE(report.ok());
    std::map<std::int64_t, JobReport> by_id;
    for (const JobReport& jr : report->job_reports) by_id[jr.id] = jr;
    return by_id;
  };

  std::map<std::int64_t, JobReport> with_chaos = run(storm);
  std::map<std::int64_t, JobReport> without = run(calm);

  int healthy = 0, faulted = 0;
  for (int i = 0; i < kJobs; ++i) {
    if (storm.Faulted(i)) {
      ++faulted;
      continue;
    }
    ++healthy;
    EXPECT_EQ(with_chaos[i].trajectory_hash, without[i].trajectory_hash)
        << "healthy job " << i << " diverged under the storm";
    EXPECT_EQ(with_chaos[i].decisions, without[i].decisions);
    EXPECT_EQ(with_chaos[i].total_parallelism, without[i].total_parallelism);
  }
  ASSERT_GT(faulted, 0);  // the storm actually hit someone
  ASSERT_GT(healthy, 0);

  // Degraded (shed) jobs under survivable faults still converge via DS2.
  for (int i = 0; i < kJobs; ++i) {
    if (with_chaos[i].mode == JobMode::kShed) {
      EXPECT_EQ(with_chaos[i].state, JobState::kConverged) << "job " << i;
    }
  }
}

TEST(ControlPlaneTest, TenThousandJobConcurrentSmoke) {
  // The TSan shard target: a big shed-mode fleet over the full worker pool.
  // No KB (null service): exercises scheduling, waves and containment only.
  const int jobs = 10000;
  ControlPlaneOptions opts = FastOptions();
  opts.num_threads = 0;  // all hardware threads
  ControlPlane plane(nullptr, opts);
  Fleet fleet = MakeFleet(jobs, nullptr);
  for (int i = 0; i < jobs; ++i) {
    ASSERT_TRUE(plane.AddJob(i, fleet.engine(i)).ok());
  }
  auto report = plane.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->jobs, jobs);
  EXPECT_EQ(report->shed_jobs, jobs);
  EXPECT_EQ(report->converged + report->quarantined + report->failed, jobs);
  EXPECT_GT(report->converged, jobs * 9 / 10);
  EXPECT_GT(report->decisions, jobs);
  EXPECT_GE(report->max_round_batch, 1u);
}

}  // namespace
}  // namespace streamtune::controlplane
