#include <gtest/gtest.h>

#include "graph/similarity.h"
#include "workloads/pqp.h"
#include "workloads/random_dag.h"

namespace streamtune::graph {
namespace {

std::vector<JobGraph> MixedDataset() {
  std::vector<JobGraph> dags;
  for (int i = 0; i < 4; ++i) {
    dags.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  for (int i = 0; i < 4; ++i) {
    dags.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
  }
  return dags;
}

TEST(SimilarityTest, SearchFindsSelf) {
  auto dags = MixedDataset();
  auto hits = SimilaritySearch(dags, dags[0], 0.0);
  ASSERT_FALSE(hits.empty());
  bool found_self = false;
  for (int h : hits) found_self |= (h == 0);
  EXPECT_TRUE(found_self);
}

TEST(SimilarityTest, MethodsAgree) {
  auto dags = MixedDataset();
  for (double tau : {2.0, 5.0}) {
    for (int q = 0; q < 3; ++q) {
      auto direct =
          SimilaritySearch(dags, dags[q], tau, SearchMethod::kDirectGed);
      auto lsa = SimilaritySearch(dags, dags[q], tau, SearchMethod::kAStarLsa);
      EXPECT_EQ(direct, lsa) << "query " << q << " tau " << tau;
    }
  }
}

TEST(SimilarityTest, SearchMatchesBruteForceGed) {
  auto dags = MixedDataset();
  double tau = 4.0;
  auto hits = SimilaritySearch(dags, dags[1], tau);
  std::vector<int> expected;
  for (size_t i = 0; i < dags.size(); ++i) {
    GedResult r = ComputeGed(dags[i], dags[1]);
    if (r.exact && r.distance <= tau + 1e-9) {
      expected.push_back(static_cast<int>(i));
    }
  }
  EXPECT_EQ(hits, expected);
}

TEST(SimilarityTest, LargerTauFindsMore) {
  auto dags = MixedDataset();
  auto small = SimilaritySearch(dags, dags[0], 1.0);
  auto large = SimilaritySearch(dags, dags[0], 10.0);
  EXPECT_GE(large.size(), small.size());
}

TEST(SimilarityTest, AppearanceCountsIncludeSelf) {
  auto dags = MixedDataset();
  auto counts = AppearanceCounts(dags, 0.0, SearchMethod::kAStarLsa);
  ASSERT_EQ(counts.size(), dags.size());
  // Every graph appears at least in its own search result.
  for (int c : counts) EXPECT_GE(c, 1);
}

TEST(SimilarityTest, SimilarityCenterIsCentralMember) {
  // Cluster of 4 similar Linear queries plus 1 structural outlier: the
  // center should not be the outlier.
  std::vector<JobGraph> cluster;
  for (int i = 0; i < 4; ++i) {
    cluster.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear,
                                             i));
  }
  cluster.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, 0));
  int center = SimilarityCenter(cluster, 5.0);
  ASSERT_GE(center, 0);
  EXPECT_LT(center, 4) << "outlier selected as similarity center";
}

TEST(SimilarityTest, EmptyClusterHasNoCenter) {
  EXPECT_EQ(SimilarityCenter({}, 5.0), -1);
}

TEST(SimilarityTest, SingletonClusterIsItsOwnCenter) {
  std::vector<JobGraph> cluster{
      workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 0)};
  EXPECT_EQ(SimilarityCenter(cluster, 5.0), 0);
}

}  // namespace
}  // namespace streamtune::graph
