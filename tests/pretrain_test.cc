#include <gtest/gtest.h>

#include "core/history.h"
#include "core/pretrain.h"
#include "workloads/pqp.h"

namespace streamtune::core {
namespace {

std::vector<HistoryRecord> SmallCorpus() {
  std::vector<JobGraph> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
  }
  HistoryOptions opts;
  opts.samples_per_job = 8;
  return CollectHistory(jobs, opts);
}

PretrainOptions FastOptions() {
  PretrainOptions opts;
  opts.k = 2;
  opts.epochs = 8;
  opts.hidden_dim = 16;
  return opts;
}

TEST(PretrainTest, RejectsEmptyCorpus) {
  Pretrainer pretrainer(FastOptions());
  EXPECT_FALSE(pretrainer.Run({}).ok());
}

TEST(PretrainTest, ProducesRequestedClusters) {
  auto bundle = Pretrainer(FastOptions()).Run(SmallCorpus());
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->num_clusters(), 2);
  // Every record lands in exactly one cluster.
  size_t assigned = 0;
  for (int c = 0; c < bundle->num_clusters(); ++c) {
    assigned += bundle->cluster(c).record_indices.size();
  }
  EXPECT_EQ(assigned, bundle->records().size());
}

TEST(PretrainTest, GlobalEncoderFallback) {
  PretrainOptions opts = FastOptions();
  opts.use_clustering = false;  // Sec. VII limited-dataset mode
  auto bundle = Pretrainer(opts).Run(SmallCorpus());
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->num_clusters(), 1);
}

TEST(PretrainTest, AssignClusterIsNearestCenter) {
  auto bundle = Pretrainer(FastOptions()).Run(SmallCorpus());
  ASSERT_TRUE(bundle.ok());
  ASSERT_EQ(bundle->num_clusters(), 2);
  // Each cluster's own center graph must assign to that cluster (GED 0),
  // and the two centers must be distinct structures.
  int c0 = bundle->AssignCluster(bundle->cluster(0).center);
  int c1 = bundle->AssignCluster(bundle->cluster(1).center);
  EXPECT_EQ(c0, 0);
  EXPECT_EQ(c1, 1);
  EXPECT_NE(bundle->cluster(0).center.name(),
            bundle->cluster(1).center.name());
}

TEST(PretrainTest, WarmUpDatasetShape) {
  auto bundle = Pretrainer(FastOptions()).Run(SmallCorpus());
  ASSERT_TRUE(bundle.ok());
  for (int c = 0; c < bundle->num_clusters(); ++c) {
    auto warmup = bundle->WarmUpDataset(c, 16, 7);
    EXPECT_FALSE(warmup.empty());
    for (const auto& s : warmup) {
      // hidden_dim plus the appended mean-rate skip connection.
      EXPECT_EQ(static_cast<int>(s.embedding.size()),
                16 + FeatureEncoder::kRateFeatures);
      EXPECT_GE(s.parallelism, 1);
      EXPECT_TRUE(s.label == 0 || s.label == 1);
    }
  }
}

TEST(PretrainTest, WarmUpRespectsMaxRecords) {
  auto bundle = Pretrainer(FastOptions()).Run(SmallCorpus());
  ASSERT_TRUE(bundle.ok());
  auto small = bundle->WarmUpDataset(0, 2, 7);
  auto large = bundle->WarmUpDataset(0, 100, 7);
  EXPECT_LE(small.size(), large.size());
}

TEST(PretrainTest, HeadProbabilitiesValidAndParallelismSensitive) {
  auto bundle = Pretrainer(FastOptions()).Run(SmallCorpus());
  ASSERT_TRUE(bundle.ok());
  JobGraph target = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 7);
  std::vector<double> rates(target.num_operators(), 0.0);
  for (int v = 0; v < target.num_operators(); ++v) {
    if (target.op(v).is_source()) rates[v] = 5e3;
  }
  int c = bundle->AssignCluster(target);
  std::vector<int> low(target.num_operators(), 1);
  std::vector<int> high(target.num_operators(), 50);
  auto p_low = bundle->PretrainHeadProbabilities(c, target, rates, low);
  auto p_high = bundle->PretrainHeadProbabilities(c, target, rates, high);
  double diff = 0;
  for (size_t v = 0; v < p_low.size(); ++v) {
    EXPECT_GE(p_low[v], 0.0);
    EXPECT_LE(p_low[v], 1.0);
    diff += std::fabs(p_low[v] - p_high[v]);
  }
  EXPECT_GT(diff, 1e-4);  // parallelism reaches the prediction
}

TEST(PretrainTest, PretrainedHeadBeatsChanceOnHeldOutLabels) {
  // Train on the corpus, evaluate label accuracy on a held-out job of the
  // same family. Uses more epochs than the other (pipeline-shape) tests.
  auto corpus = SmallCorpus();
  PretrainOptions pre_opts = FastOptions();
  pre_opts.epochs = 25;
  auto bundle = Pretrainer(pre_opts).Run(corpus);
  ASSERT_TRUE(bundle.ok());

  std::vector<JobGraph> held_out{
      workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 7)};
  HistoryOptions opts;
  opts.samples_per_job = 12;
  opts.seed = 4242;
  auto test_records = CollectHistory(held_out, opts);

  int correct = 0, total = 0;
  for (const auto& rec : test_records) {
    int c = bundle->AssignCluster(rec.graph);
    auto probs = bundle->PretrainHeadProbabilities(c, rec.graph,
                                                   rec.source_rates,
                                                   rec.parallelism);
    for (int v = 0; v < rec.graph.num_operators(); ++v) {
      if (rec.labels[v] < 0) continue;
      ++total;
      if ((probs[v] >= 0.5) == (rec.labels[v] == 1)) ++correct;
    }
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(static_cast<double>(correct) / total, 0.6)
      << correct << "/" << total;
}

TEST(PretrainTest, AgnosticEmbeddingsVaryWithRates) {
  auto bundle = Pretrainer(FastOptions()).Run(SmallCorpus());
  ASSERT_TRUE(bundle.ok());
  JobGraph target = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 0);
  std::vector<double> low(target.num_operators(), 0.0);
  std::vector<double> high(target.num_operators(), 0.0);
  for (int v = 0; v < target.num_operators(); ++v) {
    if (target.op(v).is_source()) {
      low[v] = 5e3;
      high[v] = 5e4;
    }
  }
  auto e_low = bundle->AgnosticEmbeddings(0, target, low);
  auto e_high = bundle->AgnosticEmbeddings(0, target, high);
  EXPECT_GT(e_low.Sub(e_high).SquaredNorm(), 1e-6);
}

TEST(PretrainTest, ElbowPathSelectsK) {
  PretrainOptions opts = FastOptions();
  opts.k = 0;  // force elbow selection
  opts.max_k = 4;
  auto bundle = Pretrainer(opts).Run(SmallCorpus());
  ASSERT_TRUE(bundle.ok());
  EXPECT_GE(bundle->num_clusters(), 2);
  EXPECT_LE(bundle->num_clusters(), 4);
}

}  // namespace
}  // namespace streamtune::core
