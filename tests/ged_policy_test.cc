// Tests for the per-pair GED execution policy: routing rules, the
// upper-bound-only fast path, termination semantics (budget exhaustion is
// "unknown", never "dissimilar"), the policy counters, and the outcome
// invariance that lets adaptive mode run by default — clustering and
// similarity search produce bit-identical results under every policy mode.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "graph/ged.h"
#include "graph/ged_cache.h"
#include "graph/ged_kmeans.h"
#include "graph/ged_policy.h"
#include "graph/similarity.h"
#include "workloads/random_dag.h"

namespace streamtune::graph {
namespace {

// STREAMTUNE_GED_POLICY is process-global; run each test from a known
// state and restore the harness's value.
class GedPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("STREAMTUNE_GED_POLICY");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    unsetenv("STREAMTUNE_GED_POLICY");
  }
  void TearDown() override {
    if (had_prev_) {
      setenv("STREAMTUNE_GED_POLICY", prev_.c_str(), 1);
    } else {
      unsetenv("STREAMTUNE_GED_POLICY");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

OperatorSpec Node(const char* name, OperatorType t) {
  OperatorSpec s;
  s.name = name;
  s.type = t;
  if (t == OperatorType::kSource) s.source_rate = 1;
  return s;
}

// source -> mid^(n-2) -> sink.
JobGraph Chain(int nodes, OperatorType mid = OperatorType::kMap) {
  JobGraph g("chain");
  int prev = g.AddOperator(Node("s", OperatorType::kSource));
  for (int i = 0; i < nodes - 2; ++i) {
    const std::string name = "m" + std::to_string(i);
    int v = g.AddOperator(Node(name.c_str(), mid));
    EXPECT_TRUE(g.AddEdge(prev, v).ok());
    prev = v;
  }
  int k = g.AddOperator(Node("k", OperatorType::kSink));
  EXPECT_TRUE(g.AddEdge(prev, k).ok());
  return g;
}

TEST_F(GedPolicyTest, ModeFromEnvParsing) {
  EXPECT_EQ(GedPolicyModeFromEnv(), GedPolicyMode::kAuto);
  setenv("STREAMTUNE_GED_POLICY", "bounded", 1);
  EXPECT_EQ(GedPolicyModeFromEnv(), GedPolicyMode::kBounded);
  setenv("STREAMTUNE_GED_POLICY", "exact", 1);
  EXPECT_EQ(GedPolicyModeFromEnv(), GedPolicyMode::kExact);
  setenv("STREAMTUNE_GED_POLICY", "upper", 1);  // deliberately not a pin
  EXPECT_EQ(GedPolicyModeFromEnv(), GedPolicyMode::kAuto);
}

TEST_F(GedPolicyTest, PinnedModesIgnoreStructure) {
  const JobGraph tiny = Chain(3);
  const JobGraph big = Chain(9, OperatorType::kFilter);
  GedOptions opts;
  opts.threshold = 0.5;  // lb screen would fire in auto mode
  EXPECT_EQ(ChooseGedPolicy(tiny, big, opts, GedPolicyMode::kBounded),
            GedPolicy::kBoundedLsa);
  EXPECT_EQ(ChooseGedPolicy(tiny, big, opts, GedPolicyMode::kExact),
            GedPolicy::kExactAStar);
}

TEST_F(GedPolicyTest, AutoRoutesByStructure) {
  const JobGraph tiny_a = Chain(3);
  const JobGraph tiny_b = Chain(4);
  const JobGraph big_a = Chain(8);
  const JobGraph big_b = Chain(9, OperatorType::kFilter);

  // Thresholded pair whose lower bound already exceeds the threshold: the
  // screen is the proof, skip the search.
  GedOptions screened;
  screened.threshold = 2.0;
  ASSERT_GT(LabelSetLowerBound(tiny_a, big_b), screened.threshold);
  EXPECT_EQ(ChooseGedPolicy(tiny_a, big_b, screened, GedPolicyMode::kAuto),
            GedPolicy::kUpperBoundOnly);

  // Tiny pair, no screen: plain A* (the heuristic costs more than it saves).
  EXPECT_EQ(ChooseGedPolicy(tiny_a, tiny_b, GedOptions{},
                            GedPolicyMode::kAuto),
            GedPolicy::kExactAStar);

  // Mid-sized, plausibly similar: the pre-PR bounded search.
  EXPECT_EQ(ChooseGedPolicy(big_a, big_b, GedOptions{}, GedPolicyMode::kAuto),
            GedPolicy::kBoundedLsa);
}

TEST_F(GedPolicyTest, UpperBoundOnlyReportsStructuralBoundAboveThreshold) {
  const JobGraph a = Chain(3);
  const JobGraph b = Chain(9, OperatorType::kFilter);
  GedOptions opts;
  opts.threshold = 2.0;
  ASSERT_GT(LabelSetLowerBound(a, b), opts.threshold);

  GedPolicyCounters counters;
  const GedResult r = PolicyComputeGed(a, b, opts, &counters);
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(r.termination, GedTermination::kPruned);
  EXPECT_EQ(r.distance, StructuralGedUpperBound(a, b));
  EXPECT_GT(r.distance, opts.threshold);
  EXPECT_EQ(counters.upper.load(), 1u);
  EXPECT_EQ(counters.exact.load(), 0u);
  EXPECT_EQ(counters.bounded.load(), 0u);
  EXPECT_EQ(counters.budget_exhausted.load(), 0u);
}

TEST_F(GedPolicyTest, EveryRouteAgreesOnExactDistances) {
  // Exact answers are policy-independent: when a route completes, it
  // reports the true GED.
  const JobGraph a = Chain(4);
  const JobGraph b = Chain(4, OperatorType::kFilter);
  const GedResult bounded = ComputeGed(a, b);
  ASSERT_TRUE(bounded.exact);

  setenv("STREAMTUNE_GED_POLICY", "exact", 1);
  const GedResult exact = PolicyComputeGed(a, b, GedOptions{});
  unsetenv("STREAMTUNE_GED_POLICY");
  const GedResult adaptive = PolicyComputeGed(a, b, GedOptions{});

  ASSERT_TRUE(exact.exact);
  ASSERT_TRUE(adaptive.exact);
  EXPECT_EQ(exact.distance, bounded.distance);
  EXPECT_EQ(adaptive.distance, bounded.distance);
}

TEST_F(GedPolicyTest, WithinThresholdOutParamDistinguishesOutcomes) {
  const JobGraph g = Chain(4);

  // Proven similar: exact distance within tau.
  GedResult similar;
  EXPECT_TRUE(GedWithinThreshold(g, g, 1.0, GedOptions{}, &similar));
  EXPECT_TRUE(similar.exact);
  EXPECT_EQ(similar.termination, GedTermination::kExact);
  EXPECT_EQ(similar.distance, 0.0);

  // Proven dissimilar on the lower-bound screen: synthetic kPruned result
  // carrying the free structural upper bound.
  const JobGraph far = Chain(9, OperatorType::kFilter);
  GedResult pruned;
  EXPECT_FALSE(GedWithinThreshold(g, far, 1.0, GedOptions{}, &pruned));
  EXPECT_FALSE(pruned.exact);
  EXPECT_EQ(pruned.termination, GedTermination::kPruned);
  EXPECT_EQ(pruned.distance, StructuralGedUpperBound(g, far));
}

TEST_F(GedPolicyTest, BudgetExhaustionIsUnknownNotDissimilar) {
  // Two mid-sized graphs the screen cannot separate, with a budget far too
  // small to finish: the boolean stays conservative (false) but the
  // termination says "unknown", not "proven > tau" (satellite 6).
  const JobGraph a = Chain(8);
  const JobGraph b = Chain(8, OperatorType::kFilter);
  GedOptions opts;
  opts.expansion_budget = 1;
  const double tau = LabelSetLowerBound(a, b) + 5.0;

  GedResult r;
  EXPECT_FALSE(GedWithinThreshold(a, b, tau, opts, &r));
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(r.termination, GedTermination::kBudget);

  GedPolicyCounters counters;
  GedOptions thresholded = opts;
  thresholded.threshold = tau;
  (void)PolicyComputeGed(a, b, thresholded, &counters);
  EXPECT_EQ(counters.bounded.load(), 1u);
  EXPECT_EQ(counters.budget_exhausted.load(), 1u);
}

TEST_F(GedPolicyTest, CacheNeverCertifiesBudgetExhaustedSearches) {
  // A budget-starved miss must not mint a "ged > tau" certificate: a later
  // query with a real budget has to search again and find the true answer.
  const JobGraph a = Chain(6);
  const JobGraph b = Chain(6, OperatorType::kFilter);
  GedOptions starved;
  starved.expansion_budget = 1;
  const double tau = LabelSetLowerBound(a, b) + 3.0;

  GedCache cache;
  EXPECT_FALSE(cache.WithinThreshold(a, b, tau, starved));
  // The exact search must be a fresh miss (no certified-hit short-circuit).
  const GedResult truth = ComputeGed(a, b);
  ASSERT_TRUE(truth.exact);
  const bool within = truth.distance <= tau + 1e-9;
  EXPECT_EQ(cache.WithinThreshold(a, b, tau, GedOptions{}), within);
  const GedCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits_certified, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_GE(stats.budget_exhausted, 1u);
}

TEST_F(GedPolicyTest, CacheComputeCountsPolicyHistogram) {
  const JobGraph tiny = Chain(3);
  const JobGraph far = Chain(9, OperatorType::kFilter);
  GedCache cache;

  GedOptions screened;
  screened.threshold = 2.0;
  (void)cache.Compute(tiny, far, screened);  // lb > tau: upper-bound-only

  (void)cache.Compute(tiny, Chain(4), GedOptions{});  // tiny pair: exact A*

  (void)cache.Compute(Chain(8), Chain(9), GedOptions{});  // bounded search

  const GedCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.policy_upper, 1u);
  EXPECT_EQ(stats.policy_exact, 1u);
  EXPECT_EQ(stats.policy_bounded, 1u);
  EXPECT_EQ(stats.budget_exhausted, 0u);
}

TEST_F(GedPolicyTest, ClusteringIsBitIdenticalAcrossPolicyModes) {
  // The outcome-invariance contract, end to end: adaptive routing changes
  // which search runs per pair, never what clustering computes.
  const std::vector<JobGraph> dataset =
      workloads::GenerateRandomDags(12, /*seed=*/77);
  KMeansOptions opts;
  opts.k = 3;
  opts.max_iterations = 6;

  setenv("STREAMTUNE_GED_POLICY", "bounded", 1);
  const auto pinned = ClusterDags(dataset, opts);
  unsetenv("STREAMTUNE_GED_POLICY");
  const auto adaptive = ClusterDags(dataset, opts);

  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(adaptive.ok());
  EXPECT_EQ(adaptive->assignment, pinned->assignment);
  EXPECT_EQ(adaptive->center_indices, pinned->center_indices);
  EXPECT_EQ(adaptive->within_cluster_distance,
            pinned->within_cluster_distance);
}

TEST_F(GedPolicyTest, SimilaritySearchIsBitIdenticalAcrossPolicyModes) {
  const std::vector<JobGraph> dataset =
      workloads::GenerateRandomDags(16, /*seed=*/123);
  const JobGraph& query = dataset[0];

  setenv("STREAMTUNE_GED_POLICY", "bounded", 1);
  const std::vector<int> pinned = SimilaritySearch(dataset, query, 5.0);
  unsetenv("STREAMTUNE_GED_POLICY");
  const std::vector<int> adaptive = SimilaritySearch(dataset, query, 5.0);

  EXPECT_EQ(adaptive, pinned);
  EXPECT_FALSE(adaptive.empty());  // the query itself always matches
}

}  // namespace
}  // namespace streamtune::graph
