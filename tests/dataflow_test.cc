#include <gtest/gtest.h>

#include <utility>

#include "dataflow/feature_encoder.h"
#include "dataflow/job_graph.h"

namespace streamtune {
namespace {

OperatorSpec Src(const char* name, double rate) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kSource;
  s.source_rate = rate;
  return s;
}

OperatorSpec Op(const char* name, OperatorType t) {
  OperatorSpec s;
  s.name = name;
  s.type = t;
  return s;
}

JobGraph Chain3() {
  JobGraph g("chain");
  int a = g.AddOperator(Src("src", 1000));
  int b = g.AddOperator(Op("map", OperatorType::kMap));
  int c = g.AddOperator(Op("sink", OperatorType::kSink));
  EXPECT_TRUE(g.AddEdge(a, b).ok());
  EXPECT_TRUE(g.AddEdge(b, c).ok());
  return g;
}

TEST(JobGraphTest, AddOperatorsAndEdges) {
  JobGraph g = Chain3();
  EXPECT_EQ(g.num_operators(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.op(0).name, "src");
  EXPECT_TRUE(g.Validate().ok());
}

TEST(JobGraphTest, RejectsBadEdges) {
  JobGraph g = Chain3();
  EXPECT_FALSE(g.AddEdge(0, 0).ok());   // self loop
  EXPECT_FALSE(g.AddEdge(0, 9).ok());   // out of range
  EXPECT_FALSE(g.AddEdge(-1, 1).ok());  // out of range
  EXPECT_FALSE(g.AddEdge(0, 1).ok());   // duplicate
}

TEST(JobGraphTest, AdjacencyLists) {
  JobGraph g = Chain3();
  EXPECT_TRUE(g.upstream(0).empty());
  ASSERT_EQ(g.downstream(0).size(), 1u);
  EXPECT_EQ(g.downstream(0)[0], 1);
  ASSERT_EQ(g.upstream(2).size(), 1u);
  EXPECT_EQ(g.upstream(2)[0], 1);
}

TEST(JobGraphTest, SourcesAndFirstLevelDownstream) {
  JobGraph g("join");
  int s1 = g.AddOperator(Src("s1", 10));
  int s2 = g.AddOperator(Src("s2", 10));
  int j = g.AddOperator(Op("join", OperatorType::kJoin));
  int k = g.AddOperator(Op("sink", OperatorType::kSink));
  ASSERT_TRUE(g.AddEdge(s1, j).ok());
  ASSERT_TRUE(g.AddEdge(s2, j).ok());
  ASSERT_TRUE(g.AddEdge(j, k).ok());
  EXPECT_EQ(g.SourceIds(), (std::vector<int>{s1, s2}));
  EXPECT_EQ(g.FirstLevelDownstream(), (std::vector<int>{j}));
}

TEST(JobGraphTest, DetectsCycle) {
  JobGraph g("cyclic");
  int a = g.AddOperator(Src("src", 1));
  int b = g.AddOperator(Op("m1", OperatorType::kMap));
  int c = g.AddOperator(Op("m2", OperatorType::kMap));
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  ASSERT_TRUE(g.AddEdge(c, b).ok());
  EXPECT_TRUE(g.HasCycle());
  EXPECT_FALSE(g.Validate().ok());
  EXPECT_FALSE(g.TopologicalOrder().ok());
}

TEST(JobGraphTest, TopologicalOrderRespectsEdges) {
  JobGraph g("diamond");
  int s = g.AddOperator(Src("src", 1));
  int a = g.AddOperator(Op("a", OperatorType::kMap));
  int b = g.AddOperator(Op("b", OperatorType::kFilter));
  int j = g.AddOperator(Op("join", OperatorType::kJoin));
  ASSERT_TRUE(g.AddEdge(s, a).ok());
  ASSERT_TRUE(g.AddEdge(s, b).ok());
  ASSERT_TRUE(g.AddEdge(a, j).ok());
  ASSERT_TRUE(g.AddEdge(b, j).ok());
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[order.value()[i]] = i;
  for (const auto& [from, to] : g.edges()) EXPECT_LT(pos[from], pos[to]);
}

TEST(JobGraphTest, CanonicalHashIsMemoizedAndStable) {
  JobGraph g = Chain3();
  const uint64_t h = g.CanonicalHash();
  // Repeated calls serve the memo and must agree with a fresh computation
  // on an identical graph.
  EXPECT_EQ(g.CanonicalHash(), h);
  EXPECT_EQ(Chain3().CanonicalHash(), h);
}

TEST(JobGraphTest, MutationInvalidatesCanonicalHashMemo) {
  JobGraph g = Chain3();
  const uint64_t before = g.CanonicalHash();

  // Structural growth must recompute, matching a from-scratch build.
  int d = g.AddOperator(Op("map2", OperatorType::kMap));
  ASSERT_TRUE(g.AddEdge(1, d).ok());
  const uint64_t grown = g.CanonicalHash();
  EXPECT_NE(grown, before);

  JobGraph fresh("chain");
  int a = fresh.AddOperator(Src("src", 1000));
  int b = fresh.AddOperator(Op("map", OperatorType::kMap));
  int c = fresh.AddOperator(Op("sink", OperatorType::kSink));
  ASSERT_TRUE(fresh.AddEdge(a, b).ok());
  ASSERT_TRUE(fresh.AddEdge(b, c).ok());
  int d2 = fresh.AddOperator(Op("map2", OperatorType::kMap));
  ASSERT_TRUE(fresh.AddEdge(b, d2).ok());
  EXPECT_EQ(fresh.CanonicalHash(), grown);

  // mutable_op can retype an operator, so taking it must drop the memo
  // even if the caller only reads through the reference.
  const uint64_t pre = g.CanonicalHash();
  g.mutable_op(d).type = OperatorType::kFilter;
  EXPECT_NE(g.CanonicalHash(), pre);
}

TEST(JobGraphTest, CopiesAndMovesCarryTheHashMemo) {
  JobGraph g = Chain3();
  const uint64_t h = g.CanonicalHash();

  JobGraph copy = g;
  EXPECT_EQ(copy.CanonicalHash(), h);
  // Mutating the copy must not disturb the original's memo (and vice
  // versa) — the cached value is per object, not shared.
  copy.mutable_op(0).source_rate = 2000;
  int extra = copy.AddOperator(Op("tail", OperatorType::kSink));
  ASSERT_TRUE(copy.AddEdge(2, extra).ok());
  EXPECT_NE(copy.CanonicalHash(), h);
  EXPECT_EQ(g.CanonicalHash(), h);

  JobGraph moved = std::move(copy);
  EXPECT_EQ(moved.num_operators(), 4);
  EXPECT_NE(moved.CanonicalHash(), h);
}

TEST(JobGraphTest, ValidateRejectsSourceAnomalies) {
  JobGraph g("bad1");
  int a = g.AddOperator(Src("src", 1));
  int b = g.AddOperator(Src("src2", 1));
  ASSERT_TRUE(g.AddEdge(a, b).ok());  // edge into a source
  EXPECT_FALSE(g.Validate().ok());

  JobGraph g2("bad2");
  g2.AddOperator(Op("orphan-map", OperatorType::kMap));  // no upstream
  EXPECT_FALSE(g2.Validate().ok());

  JobGraph g3("bad3");
  OperatorSpec weird = Op("map", OperatorType::kMap);
  weird.source_rate = 5;  // non-source with a rate
  int s = g3.AddOperator(Src("src", 1));
  int m = g3.AddOperator(weird);
  ASSERT_TRUE(g3.AddEdge(s, m).ok());
  EXPECT_FALSE(g3.Validate().ok());

  EXPECT_FALSE(JobGraph("empty").Validate().ok());
}

TEST(FeatureEncoderTest, DimensionStable) {
  FeatureEncoder enc;
  OperatorSpec s = Src("src", 1000);
  EXPECT_EQ(static_cast<int>(enc.Encode(s).size()),
            FeatureEncoder::FeatureDim());
}

TEST(FeatureEncoderTest, OneHotOperatorType) {
  FeatureEncoder enc;
  OperatorSpec s = Op("f", OperatorType::kFilter);
  auto f = enc.Encode(s);
  // Operator type is the first block.
  double sum = 0;
  for (int i = 0; i < kNumOperatorTypes; ++i) sum += f[i];
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(f[static_cast<int>(OperatorType::kFilter)], 1.0);
}

TEST(FeatureEncoderTest, NumericFeaturesInUnitRange) {
  FeatureEncoder enc;
  OperatorSpec s = Op("agg", OperatorType::kAggregate);
  s.window_length = 1e9;  // out of bounds -> clamped
  s.tuple_width_in = -5;  // clamped at 0
  auto f = enc.Encode(s);
  for (double v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(FeatureEncoderTest, SourceRateMonotone) {
  FeatureEncoder enc;
  // The last kRateFeatures features encode the rate; each must be
  // monotonically non-decreasing in the rate.
  auto rate_features = [&](double r) {
    OperatorSpec s = Src("s", r);
    auto f = enc.Encode(s);
    return std::vector<double>(f.end() - FeatureEncoder::kRateFeatures,
                               f.end());
  };
  auto lo = rate_features(100), mid = rate_features(10000),
       hi = rate_features(1e6);
  for (int i = 0; i < FeatureEncoder::kRateFeatures; ++i) {
    EXPECT_LE(lo[i], mid[i] + 1e-12);
    EXPECT_LE(mid[i], hi[i] + 1e-12);
  }
  // A 10x rate change must move the encoding noticeably somewhere.
  double total = 0;
  for (int i = 0; i < FeatureEncoder::kRateFeatures; ++i) {
    total += hi[i] - mid[i];
  }
  EXPECT_GT(total, 0.2);
}

TEST(FeatureEncoderTest, EncodeGraphWithRatesOverrides) {
  FeatureEncoder enc;
  JobGraph g = Chain3();
  std::vector<double> rates{5e5, 0, 0};
  auto base = enc.EncodeGraph(g);
  auto overridden = enc.EncodeGraphWithRates(g, rates);
  EXPECT_NE(base[0].back(), overridden[0].back());
  EXPECT_EQ(base[1], overridden[1]);  // non-source unchanged
}

TEST(FeatureEncoderTest, ScaleParallelism) {
  FeatureEncoder enc;
  EXPECT_DOUBLE_EQ(enc.ScaleParallelism(0), 0.0);
  EXPECT_DOUBLE_EQ(enc.ScaleParallelism(50), 0.5);
  EXPECT_DOUBLE_EQ(enc.ScaleParallelism(100), 1.0);
  EXPECT_DOUBLE_EQ(enc.ScaleParallelism(150), 1.0);  // clamped
}

TEST(OperatorTest, Names) {
  EXPECT_STREQ(OperatorTypeName(OperatorType::kWindowJoin), "WindowJoin");
  EXPECT_STREQ(WindowTypeName(WindowType::kSliding), "Sliding");
}

}  // namespace
}  // namespace streamtune
