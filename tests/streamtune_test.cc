#include <gtest/gtest.h>

#include <memory>

#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/pqp.h"

namespace streamtune::core {
namespace {

// Shared fixture state: pre-training once keeps the suite fast.
class StreamTuneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<JobGraph> jobs;
    for (int i = 0; i < 6; ++i) {
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
    }
    for (int i = 0; i < 6; ++i) {
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
    }
    HistoryOptions hist;
    hist.samples_per_job = 12;
    auto corpus = CollectHistory(jobs, hist);
    PretrainOptions pre;
    pre.k = 2;
    pre.epochs = 15;
    auto bundle = Pretrainer(pre).Run(std::move(corpus));
    ASSERT_TRUE(bundle.ok());
    bundle_ = std::make_shared<PretrainedBundle>(std::move(*bundle));
  }

  static sim::FlinkEngine MakeEngine(const JobGraph& job) {
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    return sim::FlinkEngine(job, model, sim::SimConfig{});
  }

  static std::shared_ptr<PretrainedBundle> bundle_;
};

std::shared_ptr<PretrainedBundle> StreamTuneTest::bundle_;

TEST_F(StreamTuneTest, EliminatesBackpressureOnUnseenJob) {
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin,
                                        9);  // not in the corpus
  sim::FlinkEngine engine = MakeEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());
  engine.ScaleAllSources(10.0);
  StreamTuneTuner tuner(bundle_);
  auto outcome = tuner.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  auto m = engine.Measure();
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->severe_backpressure);
}

TEST_F(StreamTuneTest, RecommendationsWithinPhysicalLimits) {
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 7);
  sim::FlinkEngine engine = MakeEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());
  engine.ScaleAllSources(8.0);
  StreamTuneTuner tuner(bundle_);
  auto outcome = tuner.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  for (int p : outcome->final_parallelism) {
    EXPECT_GE(p, 1);
    EXPECT_LE(p, engine.max_parallelism());
  }
}

TEST_F(StreamTuneTest, FeedbackAccumulationTightensRecommendations) {
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin,
                                        10);
  sim::FlinkEngine engine = MakeEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());
  StreamTuneTuner tuner(bundle_);
  // Run several tuning processes across the rate cycle.
  int first_total = -1, last_total = -1;
  for (double mult : {10.0, 3.0, 7.0, 10.0, 5.0, 10.0}) {
    engine.ScaleAllSources(mult);
    auto outcome = tuner.Tune(&engine);
    ASSERT_TRUE(outcome.ok());
    if (mult == 10.0) {
      if (first_total < 0) first_total = outcome->total_parallelism;
      last_total = outcome->total_parallelism;
    }
  }
  // With accumulated feedback the final 10x recommendation must not be
  // looser than the cold-start one.
  EXPECT_LE(last_total, first_total);
}

TEST_F(StreamTuneTest, BinarySearchMatchesLinearScanForMonotonicModels) {
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 3);
  sim::FlinkEngine engine = MakeEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());
  engine.ScaleAllSources(10.0);

  StreamTuneOptions opts;
  StreamTuneTuner tuner(bundle_, opts);
  int cluster = bundle_->AssignCluster(job);
  auto warmup = bundle_->WarmUpDataset(cluster, 60, 5);
  auto model = tuner.MakeModel(
      bundle_->cluster(cluster).encoder.config().hidden_dim +
      FeatureEncoder::kRateFeatures);
  ASSERT_TRUE(model->Fit(warmup).ok());
  std::vector<int> rec = tuner.Recommend(engine, *model, cluster);

  // Verify the binary search against an exhaustive scan per operator.
  ml::Matrix emb = bundle_->AgnosticEmbeddings(cluster, job,
                                               engine.current_source_rates());
  for (int v = 0; v < job.num_operators(); ++v) {
    int expected = engine.max_parallelism();
    for (int p = 1; p <= engine.max_parallelism(); ++p) {
      if (model->PredictProbability(emb.Row(v), p) <
          opts.probability_threshold) {
        expected = p;
        break;
      }
    }
    EXPECT_EQ(rec[v], expected) << "operator " << v;
  }
}

TEST_F(StreamTuneTest, AllThreeModelFamiliesRun) {
  for (FineTuneModel mtype : {FineTuneModel::kSvm, FineTuneModel::kXgboost,
                              FineTuneModel::kNn}) {
    JobGraph job =
        workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 11);
    sim::FlinkEngine engine = MakeEngine(job);
    std::vector<int> ones(job.num_operators(), 1);
    ASSERT_TRUE(engine.Deploy(ones).ok());
    engine.ScaleAllSources(6.0);
    StreamTuneOptions opts;
    opts.model = mtype;
    opts.nn.epochs = 60;  // keep the NN ablation fast in tests
    StreamTuneTuner tuner(bundle_, opts);
    auto outcome = tuner.Tune(&engine);
    ASSERT_TRUE(outcome.ok()) << FineTuneModelName(mtype);
    EXPECT_GE(outcome->iterations, 1);
  }
}

TEST_F(StreamTuneTest, NameReflectsModelFamily) {
  StreamTuneOptions opts;
  EXPECT_EQ(StreamTuneTuner(bundle_, opts).name(), "StreamTune");
  opts.model = FineTuneModel::kSvm;
  EXPECT_EQ(StreamTuneTuner(bundle_, opts).name(), "StreamTune-SVM");
  opts.model = FineTuneModel::kNn;
  EXPECT_EQ(StreamTuneTuner(bundle_, opts).name(), "StreamTune-NN");
}

TEST_F(StreamTuneTest, StableRecommendationShortCircuits) {
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 2);
  sim::FlinkEngine engine = MakeEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());
  engine.ScaleAllSources(4.0);
  StreamTuneTuner tuner(bundle_);
  auto first = tuner.Tune(&engine);
  ASSERT_TRUE(first.ok());
  // Re-tuning at the same rate must be cheap (at most a small refinement),
  // must not loosen the deployment, and must leave the job clean.
  auto second = tuner.Tune(&engine);
  ASSERT_TRUE(second.ok());
  EXPECT_LE(second->reconfigurations, 2);
  EXPECT_LE(second->total_parallelism, first->total_parallelism + 1);
  EXPECT_FALSE(second->ended_with_backpressure);
}


TEST_F(StreamTuneTest, ProbabilityThresholdShiftsRecommendations) {
  // A stricter (lower) threshold demands more confidence that a degree is
  // safe, so recommendations are never lower than with a lax threshold.
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 4);
  sim::FlinkEngine engine = MakeEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());
  engine.ScaleAllSources(8.0);

  int cluster = bundle_->AssignCluster(job);
  auto warmup = bundle_->WarmUpDataset(cluster, 80, 5);
  StreamTuneOptions lax_opts;
  lax_opts.probability_threshold = 0.7;
  StreamTuneOptions strict_opts;
  strict_opts.probability_threshold = 0.3;
  StreamTuneTuner lax(bundle_, lax_opts), strict(bundle_, strict_opts);
  int dim = bundle_->cluster(cluster).encoder.config().hidden_dim +
            FeatureEncoder::kRateFeatures;
  auto model = lax.MakeModel(dim);
  ASSERT_TRUE(model->Fit(warmup).ok());
  std::vector<int> lax_rec = lax.Recommend(engine, *model, cluster);
  std::vector<int> strict_rec = strict.Recommend(engine, *model, cluster);
  for (int v = 0; v < job.num_operators(); ++v) {
    EXPECT_GE(strict_rec[v], lax_rec[v]) << "operator " << v;
  }
}

TEST_F(StreamTuneTest, LiveReconfigurationChargesLessTime) {
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin,
                                        13);
  auto run = [&](bool live) {
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    sim::SimConfig cfg;
    cfg.live_reconfiguration = live;
    sim::FlinkEngine engine(job, model, cfg);
    std::vector<int> ones(job.num_operators(), 1);
    (void)engine.Deploy(ones);
    engine.ScaleAllSources(10.0);
    StreamTuneTuner tuner(bundle_);
    auto outcome = tuner.Tune(&engine);
    EXPECT_TRUE(outcome.ok());
    return std::make_pair(outcome->tuning_minutes,
                          outcome->final_parallelism);
  };
  auto [stop_minutes, stop_final] = run(false);
  auto [live_minutes, live_final] = run(true);
  // Same decisions, ~10x cheaper deployments.
  EXPECT_EQ(stop_final, live_final);
  if (stop_minutes > 0) {
    EXPECT_LT(live_minutes, 0.2 * stop_minutes);
  }
}

}  // namespace
}  // namespace streamtune::core
