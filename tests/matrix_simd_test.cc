// The SIMD kernel layer and the cross-job batched inference path.
//
// Contract under test (see matrix.h):
//   - the scalar dispatch is the bit-level reference: with
//     STREAMTUNE_FORCE_SCALAR the dispatched kernels are bit-identical to
//     the allocating Matrix methods;
//   - the AVX2 dispatch is tolerance-equal (<= 1e-12 relative) to scalar
//     for the FMA matmuls and bit-identical for the lane-wise ops;
//   - batched GNN inference is bit-identical to the sequential per-job
//     path under ANY single dispatch, including when raced from many
//     threads (the TSan shard runs this suite).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "ml/cpu_features.h"
#include "ml/matrix.h"
#include "ml/matrix_simd.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

namespace streamtune::ml {
namespace {

Matrix RandomMatrix(int r, int c, Rng* rng) {
  Matrix m(r, c);
  for (double& v : m.data()) v = 2 * rng->Uniform() - 1;
  return m;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_TRUE(a.same_shape(b));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << "entry " << i;
  }
}

void ExpectWithinRelTol(const Matrix& a, const Matrix& b, double tol) {
  ASSERT_TRUE(a.same_shape(b));
  for (size_t i = 0; i < a.size(); ++i) {
    const double want = b.data()[i];
    EXPECT_NEAR(a.data()[i], want, tol * std::max(1.0, std::fabs(want)))
        << "entry " << i;
  }
}

// Pins STREAMTUNE_FORCE_SCALAR=1 and re-resolves the kernel dispatch for
// the guard's lifetime; restores both on destruction.
class ScopedForceScalar {
 public:
  ScopedForceScalar() {
    const char* prev = std::getenv("STREAMTUNE_FORCE_SCALAR");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("STREAMTUNE_FORCE_SCALAR", "1", 1);
    ReinitKernelDispatchForTest();
  }
  ~ScopedForceScalar() {
    if (had_prev_) {
      setenv("STREAMTUNE_FORCE_SCALAR", prev_.c_str(), 1);
    } else {
      unsetenv("STREAMTUNE_FORCE_SCALAR");
    }
    ReinitKernelDispatchForTest();
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(MatrixSimdTest, DispatchMatchesHostCapability) {
  const CpuFeatures f = HostCpuFeatures();
  const bool want_avx2 =
      simd::CompiledIn() && f.avx2 && f.fma && !ForceScalarRequested();
  EXPECT_STREQ(ActiveKernelDispatch(), want_avx2 ? "avx2-fma" : "scalar");
}

TEST(MatrixSimdTest, ForceScalarOverridePinsScalarDispatch) {
  {
    ScopedForceScalar guard;
    EXPECT_TRUE(ForceScalarRequested());
    EXPECT_STREQ(ActiveKernelDispatch(), "scalar");
  }
  // Restored: back to whatever the host capability dictates.
  const CpuFeatures f = HostCpuFeatures();
  const bool want_avx2 =
      simd::CompiledIn() && f.avx2 && f.fma && !ForceScalarRequested();
  EXPECT_STREQ(ActiveKernelDispatch(), want_avx2 ? "avx2-fma" : "scalar");
}

// Under the forced-scalar dispatch the kernels are the bit-level reference
// implementation: identical to the allocating Matrix methods on any host.
TEST(MatrixSimdTest, ForcedScalarKernelsBitIdenticalToReferences) {
  ScopedForceScalar guard;
  Rng rng(31);
  // Odd shapes so every tile width's tail path runs too.
  Matrix a = RandomMatrix(5, 13, &rng);
  Matrix b = RandomMatrix(13, 17, &rng);
  Matrix bt = b.Transpose();
  Matrix at = a.Transpose();
  Matrix out;
  MatMulInto(a, b, &out);
  ExpectBitIdentical(out, a.MatMul(b));
  MatMulNTInto(a, bt, &out);
  ExpectBitIdentical(out, a.MatMul(b));
  MatMulTNInto(at, b, &out);
  ExpectBitIdentical(out, a.MatMul(b));

  Matrix x = RandomMatrix(4, 9, &rng);
  Matrix y = RandomMatrix(4, 9, &rng);
  Matrix acc = x;
  AddInto(y, &acc);
  ExpectBitIdentical(acc, x.Add(y));
  acc = x;
  AxpyInto(-1.25, y, &acc);
  for (size_t i = 0; i < acc.size(); ++i) {
    EXPECT_EQ(acc.data()[i], x.data()[i] + -1.25 * y.data()[i]);
  }
  ReluInto(x, &out);
  ASSERT_TRUE(out.same_shape(x));
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(out.data()[i], x.data()[i] > 0.0 ? x.data()[i] : 0.0);
  }
}

// The default (possibly SIMD) dispatch against the scalar reference: FMA
// reassociates the matmul reductions, so equality is within 1e-12 relative;
// the lane-wise add is bit-identical even under AVX2.
TEST(MatrixSimdTest, DefaultDispatchMatchesScalarWithinTolerance) {
  struct Shape {
    int m, k, n;
  };
  // Cover the 16-wide, 4-wide, and scalar-tail column paths and the
  // 8/4/1-step dot-product paths.
  const std::vector<Shape> shapes = {{1, 1, 1}, {3, 9, 4}, {5, 7, 17},
                                     {8, 16, 32}, {2, 21, 19}};
  for (const Shape& s : shapes) {
    Rng rng(100 + s.m + s.k + s.n);
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    Matrix bt = b.Transpose();
    Matrix at = a.Transpose();

    Matrix mm_ref, nt_ref, tn_ref;
    {
      ScopedForceScalar guard;
      MatMulInto(a, b, &mm_ref);
      MatMulNTInto(a, bt, &nt_ref);
      MatMulTNInto(at, b, &tn_ref);
    }
    Matrix out;
    MatMulInto(a, b, &out);
    ExpectWithinRelTol(out, mm_ref, 1e-12);
    MatMulNTInto(a, bt, &out);
    ExpectWithinRelTol(out, nt_ref, 1e-12);
    MatMulTNInto(at, b, &out);
    ExpectWithinRelTol(out, tn_ref, 1e-12);
  }

  Rng rng(77);
  Matrix x = RandomMatrix(3, 23, &rng);  // 5 full lanes + 3-wide tail
  Matrix y = RandomMatrix(3, 23, &rng);
  Matrix add_ref = x, relu_ref;
  {
    ScopedForceScalar guard;
    AddInto(y, &add_ref);
    ReluInto(x, &relu_ref);
  }
  Matrix acc = x;
  AddInto(y, &acc);
  ExpectBitIdentical(acc, add_ref);  // lane-wise: exact under any dispatch
  Matrix relu_out;
  ReluInto(x, &relu_out);
  ExpectBitIdentical(relu_out, relu_ref);
  acc = x;
  Matrix axpy_ref = x;
  {
    ScopedForceScalar guard;
    AxpyInto(0.37, y, &axpy_ref);
  }
  AxpyInto(0.37, y, &acc);
  ExpectWithinRelTol(acc, axpy_ref, 1e-12);
}

TEST(MatrixSimdTest, MatMulSegmentIntoMatchesSlicedMatMul) {
  Rng rng(41);
  Matrix a = RandomMatrix(3, 4, &rng);
  Matrix b = RandomMatrix(10, 5, &rng);
  const int b_row0 = 2, out_row0 = 1;
  // Reference: the same product on a contiguous copy of b's row slice.
  Matrix b_slice(a.cols(), b.cols());
  for (int r = 0; r < a.cols(); ++r) {
    for (int c = 0; c < b.cols(); ++c) {
      b_slice.at(r, c) = b.at(b_row0 + r, c);
    }
  }
  Matrix ref;
  MatMulInto(a, b_slice, &ref);

  Matrix out(8, 5, -7.0);  // sentinel fill
  MatMulSegmentInto(a, b, b_row0, &out, out_row0);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      if (r >= out_row0 && r < out_row0 + a.rows()) {
        EXPECT_EQ(out.at(r, c), ref.at(r - out_row0, c))
            << "segment row " << r << " col " << c;
      } else {
        EXPECT_EQ(out.at(r, c), -7.0) << "row " << r << " was touched";
      }
    }
  }
}

TEST(MatrixSimdTest, AlignedStorageIs32ByteAligned) {
  for (int n : {1, 3, 17, 64}) {
    Matrix m(n, n, 1.0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data().data()) % 32, 0u)
        << "rows " << n;
  }
}

// ---------------------------------------------------------------------------
// Batched inference over real bundles (suite name is part of the TSan CI
// shard's filter).

Result<core::PretrainedBundle> SmallBundle() {
  std::vector<JobGraph> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
  }
  core::HistoryOptions hist;
  hist.samples_per_job = 6;
  core::PretrainOptions pre;
  pre.k = 2;
  pre.epochs = 6;
  pre.hidden_dim = 12;
  pre.gnn_layers = 2;
  return core::Pretrainer(pre).Run(core::CollectHistory(jobs, hist));
}

TEST(BatchedInferenceTest, RandomJobSetsBitIdenticalToSequential) {
  auto bundle = SmallBundle();
  ASSERT_TRUE(bundle.ok());

  Rng rng(53);
  std::vector<JobGraph> pool;
  for (workloads::NexmarkQuery q : workloads::AllNexmarkQueries()) {
    pool.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  for (int batch_size : {1, 3, 7}) {
    // Random job set with random source rates (duplicates allowed, so the
    // per-batch graph-context dedup is exercised).
    std::vector<const JobGraph*> graphs;
    std::vector<std::vector<double>> rates;
    for (int i = 0; i < batch_size; ++i) {
      const JobGraph& g =
          pool[static_cast<size_t>(rng.Uniform() * pool.size()) %
               pool.size()];
      graphs.push_back(&g);
      std::vector<double> r(g.num_operators(), 0.0);
      for (int v = 0; v < g.num_operators(); ++v) {
        if (g.op(v).is_source()) r[v] = 1e4 + 9e5 * rng.Uniform();
      }
      rates.push_back(std::move(r));
    }
    const int c = bundle->AssignCluster(*graphs[0]);
    std::vector<core::PretrainedBundle::EmbeddingQuery> queries;
    for (int i = 0; i < batch_size; ++i) {
      queries.push_back(
          core::PretrainedBundle::EmbeddingQuery{graphs[i], &rates[i]});
    }
    std::vector<Matrix> batched = bundle->BatchedAgnosticEmbeddings(c, queries);
    ASSERT_EQ(batched.size(), queries.size());
    for (int i = 0; i < batch_size; ++i) {
      Matrix seq = bundle->AgnosticEmbeddings(c, *graphs[i], rates[i]);
      ASSERT_TRUE(batched[i].same_shape(seq));
      for (size_t k = 0; k < seq.size(); ++k) {
        EXPECT_EQ(batched[i].data()[k], seq.data()[k])
            << "batch " << batch_size << " job " << i << " entry " << k;
      }
    }
  }
}

TEST(BatchedInferenceTest, BatchedPrimingMatchesLazyRecommendations) {
  auto bundle_result = SmallBundle();
  ASSERT_TRUE(bundle_result.ok());
  auto bundle = std::make_shared<const core::PretrainedBundle>(
      std::move(*bundle_result));

  JobGraph job =
      workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 9);
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  sim::FlinkEngine engine(job, model, sim::SimConfig{});
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());

  const int cluster = bundle->AssignCluster(job);
  const int emb_dim = bundle->cluster(cluster).encoder.config().hidden_dim +
                      FeatureEncoder::kRateFeatures;
  auto dataset = bundle->WarmUpDataset(cluster, 60, 19);
  ASSERT_FALSE(dataset.empty());

  core::StreamTuneTuner lazy(bundle), primed(bundle);
  std::vector<double> rates = engine.current_source_rates();
  std::vector<core::StreamTuneTuner::PendingJob> pending{
      {&primed, &job, &rates}};
  core::StreamTuneTuner::BatchedInference(pending);

  auto fitted = lazy.MakeModel(emb_dim);
  ASSERT_TRUE(fitted->Fit(dataset).ok());
  std::vector<int> want = lazy.Recommend(engine, *fitted, cluster);
  std::vector<int> got = primed.Recommend(engine, *fitted, cluster);
  EXPECT_EQ(got, want);
}

TEST(BatchedInferenceTest, ConcurrentBatchedCallsBitIdentical) {
  auto bundle = SmallBundle();
  ASSERT_TRUE(bundle.ok());

  JobGraph a = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 9);
  JobGraph b = workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 9);
  std::vector<double> ra(a.num_operators(), 0.0), rb(b.num_operators(), 0.0);
  for (int v = 0; v < a.num_operators(); ++v) {
    if (a.op(v).is_source()) ra[v] = 2e5;
  }
  for (int v = 0; v < b.num_operators(); ++v) {
    if (b.op(v).is_source()) rb[v] = 3e5;
  }
  const int c = bundle->AssignCluster(a);
  std::vector<core::PretrainedBundle::EmbeddingQuery> queries{{&a, &ra},
                                                              {&b, &rb}};
  const std::vector<Matrix> reference =
      bundle->BatchedAgnosticEmbeddings(c, queries);

  // Many threads batching against one frozen bundle at once: results must
  // be bit-identical to the single-threaded reference (each thread has its
  // own workspace), and TSan must stay quiet.
  constexpr int kThreads = 4;
  std::vector<std::vector<Matrix>> results(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        results[t] = bundle->BatchedAgnosticEmbeddings(c, queries);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), reference.size()) << "thread " << t;
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_TRUE(results[t][i].same_shape(reference[i]));
      for (size_t k = 0; k < reference[i].size(); ++k) {
        EXPECT_EQ(results[t][i].data()[k], reference[i].data()[k])
            << "thread " << t << " job " << i << " entry " << k;
      }
    }
  }
}

}  // namespace
}  // namespace streamtune::ml
