#include <gtest/gtest.h>

#include <set>

#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"
#include "workloads/random_dag.h"
#include "workloads/rate_schedule.h"

namespace streamtune::workloads {
namespace {

TEST(NexmarkTest, AllQueriesBuildValidGraphs) {
  for (auto q : AllNexmarkQueries()) {
    for (auto e : {Engine::kFlink, Engine::kTimely}) {
      JobGraph g = BuildNexmarkJob(q, e);
      EXPECT_TRUE(g.Validate().ok()) << NexmarkQueryName(q);
      EXPECT_GE(g.num_operators(), 3);
      EXPECT_LE(g.num_operators(), 8);
    }
  }
}

TEST(NexmarkTest, TableIIRateUnits) {
  // Spot-check against Table II of the paper.
  EXPECT_DOUBLE_EQ(NexmarkRateUnit(NexmarkQuery::kQ1, Engine::kFlink, "bids"),
                   700e3);
  EXPECT_DOUBLE_EQ(NexmarkRateUnit(NexmarkQuery::kQ1, Engine::kTimely,
                                   "bids"),
                   9e6);
  EXPECT_DOUBLE_EQ(NexmarkRateUnit(NexmarkQuery::kQ3, Engine::kFlink,
                                   "auctions"),
                   200e3);
  EXPECT_DOUBLE_EQ(NexmarkRateUnit(NexmarkQuery::kQ3, Engine::kFlink,
                                   "persons"),
                   40e3);
  EXPECT_DOUBLE_EQ(NexmarkRateUnit(NexmarkQuery::kQ5, Engine::kTimely,
                                   "bids"),
                   10e6);
  EXPECT_DOUBLE_EQ(NexmarkRateUnit(NexmarkQuery::kQ8, Engine::kFlink,
                                   "auctions"),
                   100e3);
}

TEST(NexmarkTest, SourceRatesBakedIntoGraph) {
  JobGraph g = BuildNexmarkJob(NexmarkQuery::kQ3, Engine::kFlink);
  double total = 0;
  for (const OperatorSpec& op : g.operators()) {
    if (op.is_source()) total += op.source_rate;
  }
  EXPECT_DOUBLE_EQ(total, 240e3);  // 200K auctions + 40K persons
}

TEST(NexmarkTest, QueryCharacterMatchesPaper) {
  // Q1/Q2 stateless; Q3 record-at-a-time join; Q5 sliding window; Q8
  // tumbling window join.
  auto has_type = [](const JobGraph& g, OperatorType t) {
    for (const OperatorSpec& op : g.operators()) {
      if (op.type == t) return true;
    }
    return false;
  };
  JobGraph q1 = BuildNexmarkJob(NexmarkQuery::kQ1, Engine::kFlink);
  EXPECT_TRUE(has_type(q1, OperatorType::kMap));
  EXPECT_FALSE(has_type(q1, OperatorType::kJoin));
  JobGraph q2 = BuildNexmarkJob(NexmarkQuery::kQ2, Engine::kFlink);
  EXPECT_TRUE(has_type(q2, OperatorType::kFilter));
  JobGraph q3 = BuildNexmarkJob(NexmarkQuery::kQ3, Engine::kFlink);
  EXPECT_TRUE(has_type(q3, OperatorType::kJoin));
  JobGraph q5 = BuildNexmarkJob(NexmarkQuery::kQ5, Engine::kFlink);
  bool sliding = false;
  for (const OperatorSpec& op : q5.operators()) {
    sliding |= op.window_type == WindowType::kSliding;
  }
  EXPECT_TRUE(sliding);
  JobGraph q8 = BuildNexmarkJob(NexmarkQuery::kQ8, Engine::kFlink);
  bool tumbling_join = false;
  for (const OperatorSpec& op : q8.operators()) {
    tumbling_join |= op.type == OperatorType::kWindowJoin &&
                     op.window_type == WindowType::kTumbling;
  }
  EXPECT_TRUE(tumbling_join);
}

TEST(PqpTest, VariantCountsMatchPaper) {
  EXPECT_EQ(PqpVariantCount(PqpTemplate::kLinear), 8);
  EXPECT_EQ(PqpVariantCount(PqpTemplate::kTwoWayJoin), 16);
  EXPECT_EQ(PqpVariantCount(PqpTemplate::kThreeWayJoin), 32);
  EXPECT_EQ(AllPqpJobs().size(), 56u);
}

TEST(PqpTest, RateUnitsMatchTableII) {
  EXPECT_DOUBLE_EQ(PqpRateUnit(PqpTemplate::kLinear), 5e3);
  EXPECT_DOUBLE_EQ(PqpRateUnit(PqpTemplate::kTwoWayJoin), 0.5e3);
  EXPECT_DOUBLE_EQ(PqpRateUnit(PqpTemplate::kThreeWayJoin), 0.25e3);
}

TEST(PqpTest, AllVariantsValid) {
  for (const JobGraph& g : AllPqpJobs()) {
    EXPECT_TRUE(g.Validate().ok()) << g.name();
  }
}

TEST(PqpTest, VariantsAreDeterministic) {
  JobGraph a = BuildPqpJob(PqpTemplate::kTwoWayJoin, 3);
  JobGraph b = BuildPqpJob(PqpTemplate::kTwoWayJoin, 3);
  EXPECT_EQ(a.num_operators(), b.num_operators());
  EXPECT_EQ(a.edges(), b.edges());
  for (int v = 0; v < a.num_operators(); ++v) {
    EXPECT_EQ(a.op(v).type, b.op(v).type);
  }
}

TEST(PqpTest, VariantsDiffer) {
  // At least some variation across indices (shape or operator mix).
  std::set<int> op_counts;
  for (int i = 0; i < 8; ++i) {
    op_counts.insert(BuildPqpJob(PqpTemplate::kLinear, i).num_operators());
  }
  EXPECT_GT(op_counts.size(), 1u);
}

TEST(PqpTest, SourceCountsMatchTemplate) {
  EXPECT_EQ(BuildPqpJob(PqpTemplate::kLinear, 0).SourceIds().size(), 1u);
  EXPECT_EQ(BuildPqpJob(PqpTemplate::kTwoWayJoin, 0).SourceIds().size(), 2u);
  EXPECT_EQ(BuildPqpJob(PqpTemplate::kThreeWayJoin, 0).SourceIds().size(),
            3u);
}

TEST(RateScheduleTest, BasicCycleMatchesPaper) {
  EXPECT_EQ(BasicRateCycle(),
            (std::vector<double>{3, 7, 4, 2, 1, 10, 8, 5, 6, 9}));
}

TEST(RateScheduleTest, SequenceIsReplicatedPermutation) {
  auto seq = RateSequence(2);
  ASSERT_EQ(seq.size(), 20u);
  // First half equals second half (replication).
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(seq[i], seq[i + 10]);
  // Content is a permutation of the basic cycle.
  std::multiset<double> content(seq.begin(), seq.begin() + 10);
  std::multiset<double> expected{3, 7, 4, 2, 1, 10, 8, 5, 6, 9};
  EXPECT_EQ(content, expected);
}

TEST(RateScheduleTest, IdentityPermutationIsBasicCycle) {
  auto seq = RateSequence(0);
  auto cycle = BasicRateCycle();
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(seq[i], cycle[i]);
}

TEST(RateScheduleTest, FullScheduleHas120Changes) {
  auto sched = FullRateSchedule();
  EXPECT_EQ(sched.size(), 120u);
  for (double m : sched) {
    EXPECT_GE(m, 1.0);
    EXPECT_LE(m, 10.0);
  }
}

TEST(RandomDagTest, GeneratedDagsAreValid) {
  auto dags = GenerateRandomDags(30, 2024);
  for (const JobGraph& g : dags) {
    EXPECT_TRUE(g.Validate().ok()) << g.name();
    EXPECT_LE(g.num_operators(), 22);
  }
}

TEST(RandomDagTest, SourceCountWithinConfig) {
  RandomDagConfig cfg;
  cfg.min_sources = 2;
  cfg.max_sources = 3;
  auto dags = GenerateRandomDags(20, 7, cfg);
  for (const JobGraph& g : dags) {
    size_t sources = g.SourceIds().size();
    EXPECT_GE(sources, 2u);
    EXPECT_LE(sources, 3u);
  }
}

TEST(RandomDagTest, DeterministicPerSeed) {
  auto a = GenerateRandomDags(5, 99);
  auto b = GenerateRandomDags(5, 99);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].num_operators(), b[i].num_operators());
    EXPECT_EQ(a[i].edges(), b[i].edges());
  }
}

TEST(CostConfigTest, ScalesByWorkloadFamily) {
  EXPECT_DOUBLE_EQ(CostScaleFor("pqp-Linear-0"), 15.0);
  EXPECT_DOUBLE_EQ(CostScaleFor("nexmark-Q3-timely"), 0.0015);
  EXPECT_DOUBLE_EQ(CostScaleFor("nexmark-Q3-flink"), 1.0);
  EXPECT_DOUBLE_EQ(CostScaleFor("rand-17"), 1.0);
  JobGraph g = BuildPqpJob(PqpTemplate::kLinear, 0);
  EXPECT_DOUBLE_EQ(CostConfigFor(g).cost_scale, 15.0);
}

}  // namespace
}  // namespace streamtune::workloads
