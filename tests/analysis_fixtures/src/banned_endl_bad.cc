// Fixture: std::endl in library code — st-banned-endl must fire.
#include <iostream>

namespace fixture {

void ReportProgress(int pct) {
  std::cout << "progress: " << pct << std::endl;  // line 7: endl in src/
}

}  // namespace fixture
