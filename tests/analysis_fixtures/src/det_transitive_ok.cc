// Fixture: the callee reaches entropy but carries a reviewed
// STREAMTUNE_DETERMINISM_SAFE vetting mark — the transitive rule treats it
// as a clean leaf and stays silent.

#include <vector>

#include "common/annotations.h"
#include "common/thread_pool.h"

namespace fixture {

int VettedJitter() STREAMTUNE_DETERMINISM_SAFE {
  return rand();  // NOLINT(st-determinism-random) -- reviewed: fixture stub
}

void ScaleAllVetted(std::vector<int>* out) {
  streamtune::ThreadPool pool(2);
  pool.ParallelFor(0, static_cast<long>(out->size()), [&](long i) {
    (*out)[i] += VettedJitter();  // vetted callee: silent
  });
}

}  // namespace fixture
