// Fixture: printf/puts in library code — st-banned-printf must fire.
#include <cstdio>

namespace fixture {

void Debug(int x) {
  printf("x = %d\n", x);  // line 7: printf in src/
  puts("done");           // line 8: puts in src/
}

}  // namespace fixture
