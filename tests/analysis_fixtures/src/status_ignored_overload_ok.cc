// Fixture: `Step` names both a Result-returning session method and a void
// optimizer method. Name-based resolution cannot tell them apart at a call
// site, so st-status-ignored must stay silent on the bare call.
#include "common/status.h"

namespace fixture {

struct Session {
  streamtune::Result<bool> Step();
};

struct Optimizer {
  void Step();
};

void Train(Optimizer* opt) {
  opt->Step();  // void overload: not a dropped Result
}

}  // namespace fixture
