// Fixture: the only ok() mention lives inside a closed sibling block —
// control flow can reach the .value() without ever passing the check, so
// st-status-value fires (block-structural dominance, not textual match).

#include "common/status.h"

namespace fixture {

streamtune::Result<int> ParseTier(int raw);

int SiblingChecked(int raw, bool verbose) {
  streamtune::Result<int> r = ParseTier(raw);
  if (verbose) {
    bool checked = r.ok();  // buried in a block that may never run
    (void)checked;
  }
  return r.value();  // st-status-value: not dominated
}

}  // namespace fixture
