// Fixture: every Status-returning call is consumed — st-status-ignored
// stays silent.
#include "common/status.h"

namespace fixture {

streamtune::Status FlushJournal(int id);

streamtune::Status Careful() {
  streamtune::Status s = FlushJournal(1);   // assigned
  if (!FlushJournal(2).ok()) return s;      // checked inline
  ST_RETURN_NOT_OK(FlushJournal(3));        // macro-wrapped
  return FlushJournal(4);                   // returned
}

}  // namespace fixture
