// Fixture: st-determinism-random must fire on every nondeterminism source.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int EntropySeed() {
  std::random_device rd;  // line 8: random_device
  return static_cast<int>(rd());
}

int WallClockNow() {
  auto t = std::chrono::system_clock::now();  // line 13: system_clock
  return static_cast<int>(t.time_since_epoch().count());
}

int LegacyRandom() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // line 18: srand+time
  return std::rand();  // line 19: rand
}
