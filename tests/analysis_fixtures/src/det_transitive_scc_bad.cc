// Fixture: mutual recursion — the wall-clock read in PingDepth taints the
// whole {PingDepth, PongDepth} SCC, so entering it anywhere from a parallel
// combine callback fires.

#include <vector>

#include "common/thread_pool.h"

namespace fixture {

int PongDepth(int d);

int PingDepth(int d) {
  if (d <= 0) return static_cast<int>(time(nullptr));  // direct rule fires
  return PongDepth(d - 1);
}

int PongDepth(int d) {
  return PingDepth(d);  // clean body; tainted via the SCC
}

void ReduceDepths(std::vector<int>* out) {
  streamtune::ThreadPool pool(2);
  pool.ParallelReduce(0, static_cast<long>(out->size()), [&](long i) {
    (*out)[i] = PongDepth((*out)[i]);  // st-determinism-transitive
  });
}

}  // namespace fixture
