// Fixture: the `if (!r.ok()) return;` early-exit idiom. The check sits in
// the function's own block (only the return is nested), so it dominates
// every later statement — st-status-value stays silent.

#include "common/status.h"

namespace fixture {

streamtune::Result<int> ParseRate(int raw);

int EarlyExit(int raw) {
  streamtune::Result<int> r = ParseRate(raw);
  if (!r.ok()) {
    return -1;
  }
  return r.value();  // dominated by the early exit above
}

}  // namespace fixture
