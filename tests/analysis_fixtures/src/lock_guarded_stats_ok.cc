// Fixture: the mutable-stats pattern done right — const query methods and
// copy helpers take the stats mutex before touching the guarded counters
// (mirrors index::NearestCenterIndex) — st-lock-guarded-by stays silent.
#include <mutex>

#include "common/annotations.h"

namespace fixture {

class SafeQueryStats {
 public:
  void Record(int evaluated) const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    queries_ += 1;
    evaluated_ += evaluated;
  }

  void CopyFrom(const SafeQueryStats& other) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    queries_ = 0;
    (void)other;
  }

  long long queries() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return queries_;
  }

 private:
  mutable std::mutex stats_mu_;
  mutable long long queries_ STREAMTUNE_GUARDED_BY(stats_mu_) = 0;
  mutable long long evaluated_ STREAMTUNE_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace fixture
