// Fixture: include-guard style without #pragma once — st-pragma-once must
// fire (anchored at line 1).
#ifndef FIXTURE_PRAGMA_ONCE_BAD_H_
#define FIXTURE_PRAGMA_ONCE_BAD_H_

namespace fixture {
inline int Seven() { return 7; }
}  // namespace fixture

#endif  // FIXTURE_PRAGMA_ONCE_BAD_H_
