// Fixture: file 3 of the three-file lock-order cycle (see lock_order_a.cc).
// Calling back into AcquireA closes the loop: C before A.

#include <mutex>

namespace fixture {

void AcquireA();  // defined in lock_order_a.cc

std::mutex order_c_mu;

void ChainC() {
  std::lock_guard<std::mutex> hold(order_c_mu);
  AcquireA();  // C before A — closes the cycle
}

}  // namespace fixture
