// Fixture: the mutable-stats pattern — a const query method and a named
// copy helper mutating a STREAMTUNE_GUARDED_BY member with no lock held.
// st-lock-guarded-by must fire on both: const does not mean thread-safe,
// and only constructors/destructors are exempt, not named helpers.
#include <mutex>

#include "common/annotations.h"

namespace fixture {

class QueryStats {
 public:
  void Record(int evaluated) const {
    queries_ += 1;          // line 14: const method, still a write
    evaluated_ += evaluated;  // line 15: same
  }

  void CopyFrom(const QueryStats& other) {
    queries_ = 0;  // line 19: named helper is not constructor-exempt
    (void)other;
  }

 private:
  mutable std::mutex stats_mu_;
  mutable long long queries_ STREAMTUNE_GUARDED_BY(stats_mu_) = 0;
  mutable long long evaluated_ STREAMTUNE_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace fixture
