// Fixture: ordered containers may feed reductions, and unordered iteration
// is fine when the loop body is order-insensitive (per-slot writes).
#include <map>
#include <string>
#include <unordered_map>

double SumCostsOrdered(const std::map<std::string, double>& ordered_costs) {
  double total = 0.0;
  for (const auto& kv : ordered_costs) {
    total += kv.second;  // std::map iterates in key order: deterministic
  }
  return total;
}

void Normalize(std::unordered_map<std::string, double>* costs) {
  for (auto& kv : *costs) {
    kv.second = kv.second / 2.0;  // per-slot write: order-insensitive
  }
}
