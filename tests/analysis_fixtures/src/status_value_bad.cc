// Fixture: Result::value() with no dominating ok() check — st-status-value
// must fire (value() aborts on an errored Result).
#include "common/status.h"

namespace fixture {

streamtune::Result<int> ParseDegree(int raw);

int Reckless(int raw) {
  streamtune::Result<int> r = ParseDegree(raw);
  return r.value();  // line 11: no r.ok() check dominates this
}

int RecklessTemporary(int raw) {
  return ParseDegree(raw).value();  // line 15: temporary, never checkable
}

}  // namespace fixture
