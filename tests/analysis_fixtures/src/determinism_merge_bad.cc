// Fixture: the merge point of a sharded reduction gone wrong — shard
// partials keyed in an unordered container and folded in iteration order.
// The combine sequence then follows the hash layout instead of the shard
// ids, exactly the bug the canonical merge order in ParallelReduce rules
// out; st-determinism-unordered-iter must fire on both merges.
#include <string>
#include <unordered_map>

double MergeShardPartials(const std::unordered_map<int, double>& partials) {
  double merged = 0.0;
  for (const auto& shard : partials) {
    merged += shard.second;  // += in hash-layout order
  }
  return merged;
}

std::string ConcatShardLogs(
    const std::unordered_map<int, std::string>& logs) {
  std::string joined;
  for (const auto& shard : logs) {
    joined += shard.second;  // concatenation is order-sensitive too
  }
  return joined;
}
