// Fixture: range-for over an unordered container feeding an order-sensitive
// reduction — st-determinism-unordered-iter must fire.
#include <string>
#include <unordered_map>
#include <vector>

double SumCosts(const std::unordered_map<std::string, double>& costs) {
  double total = 0.0;
  for (const auto& kv : costs) {
    total += kv.second;  // line 10: += over unordered iteration order
  }
  return total;
}

std::vector<std::string> CollectKeys(
    const std::unordered_map<std::string, double>& costs) {
  std::vector<std::string> keys;
  for (const auto& kv : costs) {
    keys.push_back(kv.first);  // line 19: push_back in unordered order
  }
  return keys;
}
