// Fixture: seeded generators, member calls, and foreign-qualified calls
// named like banned APIs are fine — st-determinism-random stays silent.
#include <random>

#include "fake_entropy.h"

int SeededDraw(unsigned seed, const fake::Sampler& s) {
  std::mt19937_64 gen(seed);  // explicit seed: reproducible
  int member_call = s.rand();            // member named rand: not ::rand
  int foreign_call = fake::time(0);      // fake::time: not std::time
  int rand_like_name = member_call + 1;  // identifier merely contains "rand"
  return static_cast<int>(gen()) + foreign_call + rand_like_name;
}
