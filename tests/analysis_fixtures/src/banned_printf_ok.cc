// Fixture: member calls named printf and '\n'-terminated streams are fine —
// st-banned-printf / st-banned-endl stay silent.
#include <iostream>

#include "fake_logger.h"

namespace fixture {

void Report(fake::Logger& log, int x) {
  log.printf("x = %d", x);       // member printf: someone else's API
  std::cout << "x=" << x << '\n';  // newline without a flush
}

}  // namespace fixture
