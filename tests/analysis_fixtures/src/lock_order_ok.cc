// Fixture: nested acquisition in one consistent global order everywhere —
// the lock-order graph has edges but no cycle, so st-lock-order-cycle
// stays silent.

#include <mutex>

namespace fixture {

std::mutex ok_outer_mu;
std::mutex ok_inner_mu;

int NestedInOrder(int x) {
  std::lock_guard<std::mutex> outer(ok_outer_mu);
  std::lock_guard<std::mutex> inner(ok_inner_mu);
  return x + 1;
}

int AlsoInOrder(int x) {
  std::lock_guard<std::mutex> outer(ok_outer_mu);
  std::lock_guard<std::mutex> inner(ok_inner_mu);
  return x + 2;
}

}  // namespace fixture
