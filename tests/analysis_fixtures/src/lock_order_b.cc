// Fixture: file 2 of the three-file lock-order cycle (see lock_order_a.cc).

#include <mutex>

namespace fixture {

void ChainC();  // defined in lock_order_c.cc

std::mutex order_b_mu;

void ChainB() {
  std::lock_guard<std::mutex> hold(order_b_mu);
  ChainC();  // B before C
}

}  // namespace fixture
