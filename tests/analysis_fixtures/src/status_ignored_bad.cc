// Fixture: a Status / Result return value dropped on the floor —
// st-status-ignored must fire.
#include "common/status.h"

namespace fixture {

streamtune::Status WriteCheckpoint(int id);
streamtune::Result<int> ReadCheckpoint(int id);

void Sloppy() {
  WriteCheckpoint(7);  // line 11: Status discarded
  ReadCheckpoint(7);   // line 12: Result discarded
}

}  // namespace fixture
