// Fixture: real violations silenced by NOLINT markers — the analyzer must
// report zero findings here but count the suppressions.
#include <cstdio>
#include <random>

namespace fixture {

int Entropy() {
  std::random_device rd;  // NOLINT(st-determinism-random)
  // NOLINTNEXTLINE(st-banned-printf)
  printf("entropy source engaged\n");
  // A bare NOLINT suppresses every rule on its line.
  std::random_device rd2;  // NOLINT
  return static_cast<int>(rd()) + static_cast<int>(rd2());
}

}  // namespace fixture
