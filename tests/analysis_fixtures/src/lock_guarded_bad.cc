// Fixture: a STREAMTUNE_GUARDED_BY member touched with no lock held —
// st-lock-guarded-by must fire.
#include <mutex>

#include "common/annotations.h"

namespace fixture {

class Counter {
 public:
  void Increment() {
    total_ += 1;  // line 12: no lock on mu_
  }

  long long Peek() const {
    return total_;  // line 16: read is still an access
  }

 private:
  mutable std::mutex mu_;
  long long total_ STREAMTUNE_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
