// Fixture: a helper chain whose leaf consults entropy. The direct rule
// flags the leaf line here; the *transitive* finding fires in
// det_transitive_bad.cc, where the chain is entered from a parallel
// callback.

namespace fixture {

int LeafEntropy() {
  return rand();  // st-determinism-random fires on this line
}

int MidLayer(int x) {
  return LeafEntropy() + x;  // clean body, tainted through the call
}

}  // namespace fixture
