// Fixture: both sanctioned ways to call a STREAMTUNE_REQUIRES function —
// under a lock_guard on the required mutex, or from a caller that declares
// the same contract.

#include <mutex>

#include "common/annotations.h"

namespace fixture {

class SafeQueue {
 public:
  void DrainReady() STREAMTUNE_REQUIRES(smu_);
  void PumpHolding();
  void PumpFromLocked() STREAMTUNE_REQUIRES(smu_);

 private:
  std::mutex smu_;
};

void SafeQueue::PumpHolding() {
  std::lock_guard<std::mutex> hold(smu_);
  DrainReady();  // lock held: silent
}

void SafeQueue::PumpFromLocked() {
  DrainReady();  // caller's own REQUIRES covers it: silent
}

}  // namespace fixture
