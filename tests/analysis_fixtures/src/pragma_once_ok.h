// Fixture: header leading with #pragma once — st-pragma-once stays silent.
#pragma once

namespace fixture {
inline int Eight() { return 8; }
}  // namespace fixture
