// Fixture: operator() carrying STREAMTUNE_REQUIRES(vmu_) — the annotation
// is attached to the operator name, sanctioning the guarded access.

#include <mutex>

#include "common/annotations.h"

namespace fixture {

class Visitor {
 public:
  int operator()(int x) STREAMTUNE_REQUIRES(vmu_) {
    return total_ += x;  // contract declared: silent
  }

 private:
  std::mutex vmu_;
  int total_ STREAMTUNE_GUARDED_BY(vmu_) = 0;
};

}  // namespace fixture
