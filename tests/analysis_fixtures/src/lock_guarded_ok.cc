// Fixture: guarded accesses under a lock_guard, via STREAMTUNE_REQUIRES,
// or inside the constructor — st-lock-guarded-by stays silent.
#include <mutex>

#include "common/annotations.h"

namespace fixture {

class SafeCounter {
 public:
  SafeCounter() {
    total_ = 0;  // constructor: the object is not shared yet
  }

  void Increment() {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += 1;  // covered by the lock_guard above
  }

  long long DrainLocked() STREAMTUNE_REQUIRES(mu_) {
    return total_;  // caller holds mu_ per the annotation
  }

 private:
  mutable std::mutex mu_;
  long long total_ STREAMTUNE_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
