// Fixture: value() dominated by an ok() / boolean check — st-status-value
// stays silent.
#include "common/status.h"

namespace fixture {

streamtune::Result<int> ParseDegree(int raw);

int Guarded(int raw) {
  streamtune::Result<int> r = ParseDegree(raw);
  if (!r.ok()) return -1;
  return r.value();  // dominated by the ok() check above
}

int GuardedBool(int raw) {
  auto r = ParseDegree(raw);
  if (r.ok()) {
    return r.value();  // dominated inside the if
  }
  return -1;
}

}  // namespace fixture
