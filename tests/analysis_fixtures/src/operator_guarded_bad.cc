// Fixture: a guarded member touched inside operator() with no lock and no
// REQUIRES contract. Operator bodies are recognized as functions, so the
// access is checked like any other member function.

#include <mutex>

#include "common/annotations.h"

namespace fixture {

class Tally {
 public:
  int operator()(int x) {
    return total_ += x;  // st-lock-guarded-by: tmu_ not held
  }

 private:
  std::mutex tmu_;
  int total_ STREAMTUNE_GUARDED_BY(tmu_) = 0;
};

}  // namespace fixture
