// Fixture: calling a transitively nondeterministic helper (defined in
// det_transitive_helper.cc) from a ParallelFor map callback. The callback
// itself is clean — only the cross-file call graph can see the taint.

#include <vector>

#include "common/thread_pool.h"

namespace fixture {

int MidLayer(int x);

void ScaleAll(std::vector<int>* out) {
  streamtune::ThreadPool pool(2);
  pool.ParallelFor(0, static_cast<long>(out->size()), [&](long i) {
    (*out)[i] = MidLayer((*out)[i]);  // st-determinism-transitive
  });
}

}  // namespace fixture
