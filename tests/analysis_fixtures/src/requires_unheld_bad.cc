// Fixture: calling a STREAMTUNE_REQUIRES(qmu_) member without holding the
// mutex and without the caller declaring the same contract.

#include <mutex>

#include "common/annotations.h"

namespace fixture {

class JobQueue {
 public:
  void DrainPending() STREAMTUNE_REQUIRES(qmu_);
  void Pump();

 private:
  std::mutex qmu_;
};

void JobQueue::Pump() {
  DrainPending();  // st-requires-unheld: qmu_ is not held here
}

}  // namespace fixture
