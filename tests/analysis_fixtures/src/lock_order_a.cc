// Fixture: file 1 of a three-file lock-order cycle. ChainA holds this
// file's mutex while calling into lock_order_b.cc, which (transitively)
// acquires the other two — composing the A-before-B edge of the
// A -> B -> C -> A cycle.

#include <mutex>

namespace fixture {

void ChainB();  // defined in lock_order_b.cc

std::mutex order_a_mu;

void AcquireA() {
  std::lock_guard<std::mutex> hold(order_a_mu);
}

void ChainA() {
  std::lock_guard<std::mutex> hold(order_a_mu);
  ChainB();  // st-lock-order-cycle anchors here (first witness edge)
}

}  // namespace fixture
