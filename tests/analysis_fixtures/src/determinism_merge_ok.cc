// Fixture: the deterministic merge point — shard partials live in a vector
// and fold in ascending shard id, so the combine sequence is a function of
// the input alone (the ParallelReduce radix-shard contract). No findings.
#include <cstddef>
#include <vector>

double MergeShardPartialsCanonical(const std::vector<double>& partials) {
  double merged = 0.0;
  for (size_t s = 0; s < partials.size(); ++s) {
    merged += partials[s];
  }
  return merged;
}

// Pairwise tree merge over a vector: adjacent ranges combine along a
// topology fixed by the chunk count, independent of thread schedule.
double TreeMergeCanonical(std::vector<double> parts) {
  for (size_t stride = 1; stride < parts.size(); stride *= 2) {
    for (size_t j = 0; j + stride < parts.size(); j += 2 * stride) {
      parts[j] += parts[j + stride];
    }
  }
  return parts.empty() ? 0.0 : parts[0];
}
