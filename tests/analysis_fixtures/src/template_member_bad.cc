// Fixture: only the *out-of-line template member definition* is visible in
// this corpus (the class declaration lives in a TU that is not analyzed).
// Recognition of `Result<T> Registry<T>::Lookup(` must come from the
// qualified definition itself.

#include "common/status.h"

namespace fixture {

template <typename T>
class Registry;

template <typename T>
streamtune::Result<int> Registry<T>::Lookup(int key) {
  return streamtune::Result<int>(key);
}

void Probe(Registry<int>& reg) {
  reg.Lookup(7);  // st-status-ignored: Result discarded
}

}  // namespace fixture
