// Fixture: tools/ may print and flush freely — st-banned-printf and
// st-banned-endl do not apply here.
#include <cstdio>
#include <iostream>

int main() {
  printf("hello from the CLI\n");
  std::cout << "flushing is fine here" << std::endl;
  return 0;
}
