// Tests for the st_analyze static-analysis engine: the fixture corpus must
// produce exactly the golden findings (file:line:rule), NOLINT markers and
// baselines must suppress, and the real tree must stay clean.

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"

namespace streamtune::analysis {
namespace {

namespace fs = std::filesystem;

std::string FixtureDir() { return ST_FIXTURE_DIR; }

// The repo root is two levels above tests/analysis_fixtures.
std::string RepoRoot() {
  return fs::path(FixtureDir()).parent_path().parent_path().string();
}

AnalysisReport MustRun(AnalyzerOptions options) {
  Result<AnalysisReport> report = RunAnalyzer(options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *std::move(report) : AnalysisReport{};
}

std::set<std::string> Keys(const AnalysisReport& report) {
  std::set<std::string> keys;
  for (const Finding& f : report.findings) keys.insert(f.Key());
  return keys;
}

AnalyzerOptions FixtureOptions() {
  AnalyzerOptions options;
  options.root = FixtureDir();
  options.paths = {"src", "tools"};
  return options;
}

TEST(AnalyzerFixtures, CorpusMatchesGoldenExactly) {
  // The golden file uses the baseline format, so LoadBaseline parses it.
  Result<std::set<std::string>> golden =
      LoadBaseline(FixtureDir() + "/expected.txt");
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  ASSERT_FALSE(golden->empty());

  AnalysisReport report = MustRun(FixtureOptions());
  EXPECT_EQ(Keys(report), *golden);
}

TEST(AnalyzerFixtures, EveryRuleFiresAtLeastOnce) {
  AnalysisReport report = MustRun(FixtureOptions());
  std::set<std::string> fired;
  for (const Finding& f : report.findings) fired.insert(f.rule);
  const std::set<std::string> all = {
      "st-determinism-random", "st-determinism-unordered-iter",
      "st-status-ignored",     "st-status-value",
      "st-lock-guarded-by",    "st-banned-endl",
      "st-banned-printf",      "st-pragma-once"};
  EXPECT_EQ(fired, all);
}

TEST(AnalyzerFixtures, SilentFixturesProduceNoFindings) {
  AnalysisReport report = MustRun(FixtureOptions());
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.file.find("_ok."), std::string::npos) << f.ToString();
    EXPECT_EQ(f.file.find("nolint_suppressed"), std::string::npos)
        << f.ToString();
    EXPECT_EQ(f.file.find("tools/"), std::string::npos) << f.ToString();
  }
}

TEST(AnalyzerFixtures, ExactFindingLocations) {
  AnalysisReport report = MustRun(FixtureOptions());
  std::set<std::string> keys = Keys(report);
  // One pinpoint assertion per rule, in catalogue order.
  EXPECT_TRUE(keys.count("src/determinism_random_bad.cc:8:st-determinism-random"));
  EXPECT_TRUE(keys.count(
      "src/determinism_unordered_bad.cc:9:st-determinism-unordered-iter"));
  EXPECT_TRUE(keys.count("src/status_ignored_bad.cc:11:st-status-ignored"));
  EXPECT_TRUE(keys.count("src/status_value_bad.cc:15:st-status-value"));
  EXPECT_TRUE(keys.count("src/lock_guarded_bad.cc:12:st-lock-guarded-by"));
  EXPECT_TRUE(keys.count("src/banned_endl_bad.cc:7:st-banned-endl"));
  EXPECT_TRUE(keys.count("src/banned_printf_bad.cc:8:st-banned-printf"));
  EXPECT_TRUE(keys.count("src/pragma_once_bad.h:1:st-pragma-once"));
}

TEST(AnalyzerFixtures, NolintMarkersSuppressAndAreCounted) {
  AnalysisReport report = MustRun(FixtureOptions());
  // nolint_suppressed.cc holds three real violations (random_device x2 and
  // a printf), every one silenced by NOLINT / NOLINTNEXTLINE / bare NOLINT.
  EXPECT_EQ(report.suppressed_nolint, 3);
}

TEST(AnalyzerBaseline, FullBaselineSilencesEverything) {
  Result<std::set<std::string>> golden =
      LoadBaseline(FixtureDir() + "/expected.txt");
  ASSERT_TRUE(golden.ok());

  AnalyzerOptions options = FixtureOptions();
  options.baseline = *golden;
  AnalysisReport report = MustRun(options);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed_baseline,
            static_cast<int>(golden->size()));
}

TEST(AnalyzerBaseline, PartialBaselineSubtractsOnlyItsKeys) {
  AnalyzerOptions options = FixtureOptions();
  options.baseline = {"src/banned_endl_bad.cc:7:st-banned-endl"};
  AnalysisReport report = MustRun(options);
  std::set<std::string> keys = Keys(report);
  EXPECT_FALSE(keys.count("src/banned_endl_bad.cc:7:st-banned-endl"));
  EXPECT_TRUE(keys.count("src/banned_printf_bad.cc:7:st-banned-printf"));
  EXPECT_EQ(report.suppressed_baseline, 1);
}

TEST(AnalyzerBaseline, WriteThenLoadRoundTrips) {
  AnalysisReport report = MustRun(FixtureOptions());
  std::string path =
      (fs::path(::testing::TempDir()) / "st_analyze_baseline.txt").string();
  ASSERT_TRUE(WriteBaseline(path, report.findings).ok());
  Result<std::set<std::string>> loaded = LoadBaseline(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, Keys(report));
  fs::remove(path);
}

TEST(AnalyzerOptionsTest, EnabledRulesRestrictsTheRun) {
  AnalyzerOptions options = FixtureOptions();
  options.enabled_rules = {"st-banned-endl"};
  AnalysisReport report = MustRun(options);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].Key(),
            "src/banned_endl_bad.cc:7:st-banned-endl");
}

TEST(AnalyzerSeededViolation, FreshViolationIsDetected) {
  // Seed a violation into a scratch "src/" tree and confirm the analyzer
  // reports it — the property the lint CI job relies on.
  fs::path root = fs::path(::testing::TempDir()) / "st_seeded_repo";
  fs::create_directories(root / "src");
  {
    std::ofstream out(root / "src" / "seeded.cc");
    out << "#include <random>\n"
        << "int Seed() {\n"
        << "  std::random_device rd;\n"
        << "  return static_cast<int>(rd());\n"
        << "}\n";
  }
  AnalyzerOptions options;
  options.root = root.string();
  options.paths = {"src"};
  AnalysisReport report = MustRun(options);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].Key(),
            "src/seeded.cc:3:st-determinism-random");
  fs::remove_all(root);
}

TEST(AnalyzerRealTree, RepositoryIsCleanWithoutBaseline) {
  // The self-hosting invariant: the real tree carries zero non-baselined
  // findings. If this fails, run the lint target and fix (or justify and
  // NOLINT) what it reports.
  AnalyzerOptions options;
  options.root = RepoRoot();
  options.paths = {"src", "tests", "tools", "bench"};
  AnalysisReport report = MustRun(options);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.ToString();
  }
  EXPECT_GT(report.files_analyzed, 100);
}

}  // namespace
}  // namespace streamtune::analysis
