// Tests for the st_analyze static-analysis engine: the fixture corpus must
// produce exactly the golden findings (file:line:rule), NOLINT markers and
// baselines must suppress, and the real tree must stay clean.

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/sarif.h"

namespace streamtune::analysis {
namespace {

namespace fs = std::filesystem;

std::string FixtureDir() { return ST_FIXTURE_DIR; }

// The repo root is two levels above tests/analysis_fixtures.
std::string RepoRoot() {
  return fs::path(FixtureDir()).parent_path().parent_path().string();
}

AnalysisReport MustRun(AnalyzerOptions options) {
  Result<AnalysisReport> report = RunAnalyzer(options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *std::move(report) : AnalysisReport{};
}

std::set<std::string> Keys(const AnalysisReport& report) {
  std::set<std::string> keys;
  for (const Finding& f : report.findings) keys.insert(f.Key());
  return keys;
}

AnalyzerOptions FixtureOptions() {
  AnalyzerOptions options;
  options.root = FixtureDir();
  options.paths = {"src", "tools"};
  return options;
}

TEST(AnalyzerFixtures, CorpusMatchesGoldenExactly) {
  // The golden file uses the baseline format, so LoadBaseline parses it.
  Result<std::set<std::string>> golden =
      LoadBaseline(FixtureDir() + "/expected.txt");
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  ASSERT_FALSE(golden->empty());

  AnalysisReport report = MustRun(FixtureOptions());
  EXPECT_EQ(Keys(report), *golden);
}

TEST(AnalyzerFixtures, EveryRuleFiresAtLeastOnce) {
  AnalysisReport report = MustRun(FixtureOptions());
  std::set<std::string> fired;
  for (const Finding& f : report.findings) fired.insert(f.rule);
  const std::set<std::string> all = {
      "st-determinism-random",     "st-determinism-unordered-iter",
      "st-determinism-transitive", "st-status-ignored",
      "st-status-value",           "st-lock-guarded-by",
      "st-lock-order-cycle",       "st-requires-unheld",
      "st-banned-endl",            "st-banned-printf",
      "st-pragma-once"};
  EXPECT_EQ(fired, all);
}

TEST(AnalyzerFixtures, SilentFixturesProduceNoFindings) {
  AnalysisReport report = MustRun(FixtureOptions());
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.file.find("_ok."), std::string::npos) << f.ToString();
    EXPECT_EQ(f.file.find("nolint_suppressed"), std::string::npos)
        << f.ToString();
    EXPECT_EQ(f.file.find("tools/"), std::string::npos) << f.ToString();
  }
}

TEST(AnalyzerFixtures, ExactFindingLocations) {
  AnalysisReport report = MustRun(FixtureOptions());
  std::set<std::string> keys = Keys(report);
  // One pinpoint assertion per rule, in catalogue order.
  EXPECT_TRUE(keys.count("src/determinism_random_bad.cc:8:st-determinism-random"));
  EXPECT_TRUE(keys.count(
      "src/determinism_unordered_bad.cc:9:st-determinism-unordered-iter"));
  EXPECT_TRUE(keys.count("src/status_ignored_bad.cc:11:st-status-ignored"));
  EXPECT_TRUE(keys.count("src/status_value_bad.cc:15:st-status-value"));
  EXPECT_TRUE(keys.count("src/lock_guarded_bad.cc:12:st-lock-guarded-by"));
  EXPECT_TRUE(keys.count("src/banned_endl_bad.cc:7:st-banned-endl"));
  EXPECT_TRUE(keys.count("src/banned_printf_bad.cc:8:st-banned-printf"));
  EXPECT_TRUE(keys.count("src/pragma_once_bad.h:1:st-pragma-once"));
  // Interprocedural rules: the finding anchors at the offending call site.
  EXPECT_TRUE(keys.count(
      "src/det_transitive_bad.cc:16:st-determinism-transitive"));
  EXPECT_TRUE(keys.count(
      "src/det_transitive_scc_bad.cc:25:st-determinism-transitive"));
  EXPECT_TRUE(keys.count("src/lock_order_a.cc:20:st-lock-order-cycle"));
  EXPECT_TRUE(keys.count("src/requires_unheld_bad.cc:20:st-requires-unheld"));
  // Satellite recognitions: dominance-aware .value(), operator() bodies,
  // and out-of-line template member definitions.
  EXPECT_TRUE(keys.count("src/status_value_sibling_bad.cc:17:st-status-value"));
  EXPECT_TRUE(keys.count("src/operator_guarded_bad.cc:14:st-lock-guarded-by"));
  EXPECT_TRUE(keys.count("src/template_member_bad.cc:19:st-status-ignored"));
}

TEST(AnalyzerFixtures, NolintMarkersSuppressAndAreCounted) {
  AnalysisReport report = MustRun(FixtureOptions());
  // nolint_suppressed.cc holds three real violations (random_device x2 and
  // a printf) silenced by NOLINT / NOLINTNEXTLINE / bare NOLINT, and
  // det_transitive_ok.cc silences one vetted rand() call.
  EXPECT_EQ(report.suppressed_nolint, 4);
}

TEST(AnalyzerBaseline, FullBaselineSilencesEverything) {
  Result<std::set<std::string>> golden =
      LoadBaseline(FixtureDir() + "/expected.txt");
  ASSERT_TRUE(golden.ok());

  AnalyzerOptions options = FixtureOptions();
  options.baseline = *golden;
  AnalysisReport report = MustRun(options);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed_baseline,
            static_cast<int>(golden->size()));
}

TEST(AnalyzerBaseline, PartialBaselineSubtractsOnlyItsKeys) {
  AnalyzerOptions options = FixtureOptions();
  options.baseline = {"src/banned_endl_bad.cc:7:st-banned-endl"};
  AnalysisReport report = MustRun(options);
  std::set<std::string> keys = Keys(report);
  EXPECT_FALSE(keys.count("src/banned_endl_bad.cc:7:st-banned-endl"));
  EXPECT_TRUE(keys.count("src/banned_printf_bad.cc:7:st-banned-printf"));
  EXPECT_EQ(report.suppressed_baseline, 1);
}

TEST(AnalyzerBaseline, WriteThenLoadRoundTrips) {
  AnalysisReport report = MustRun(FixtureOptions());
  std::string path =
      (fs::path(::testing::TempDir()) / "st_analyze_baseline.txt").string();
  ASSERT_TRUE(WriteBaseline(path, report.findings).ok());
  Result<std::set<std::string>> loaded = LoadBaseline(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, Keys(report));
  fs::remove(path);
}

TEST(AnalyzerOptionsTest, EnabledRulesRestrictsTheRun) {
  AnalyzerOptions options = FixtureOptions();
  options.enabled_rules = {"st-banned-endl"};
  AnalysisReport report = MustRun(options);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].Key(),
            "src/banned_endl_bad.cc:7:st-banned-endl");
}

TEST(AnalyzerSeededViolation, FreshViolationIsDetected) {
  // Seed a violation into a scratch "src/" tree and confirm the analyzer
  // reports it — the property the lint CI job relies on.
  fs::path root = fs::path(::testing::TempDir()) / "st_seeded_repo";
  fs::create_directories(root / "src");
  {
    std::ofstream out(root / "src" / "seeded.cc");
    out << "#include <random>\n"
        << "int Seed() {\n"
        << "  std::random_device rd;\n"
        << "  return static_cast<int>(rd());\n"
        << "}\n";
  }
  AnalyzerOptions options;
  options.root = root.string();
  options.paths = {"src"};
  AnalysisReport report = MustRun(options);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].Key(),
            "src/seeded.cc:3:st-determinism-random");
  fs::remove_all(root);
}

TEST(AnalyzerCache, WarmRunRetokenizesNothingAndMatchesCold) {
  std::string cache =
      (fs::path(::testing::TempDir()) / "st_analyze_cache.txt").string();
  fs::remove(cache);

  AnalyzerOptions options = FixtureOptions();
  options.cache_path = cache;

  AnalysisReport cold = MustRun(options);
  EXPECT_EQ(cold.files_from_cache, 0);
  EXPECT_EQ(cold.files_retokenized, cold.files_analyzed);

  AnalysisReport warm = MustRun(options);
  EXPECT_EQ(warm.files_retokenized, 0);
  EXPECT_EQ(warm.files_from_cache, warm.files_analyzed);
  EXPECT_EQ(warm.files_analyzed, cold.files_analyzed);
  EXPECT_EQ(warm.suppressed_nolint, cold.suppressed_nolint);

  // Byte-identical findings, not just matching keys.
  ASSERT_EQ(warm.findings.size(), cold.findings.size());
  for (size_t i = 0; i < warm.findings.size(); ++i) {
    EXPECT_EQ(warm.findings[i].ToString(), cold.findings[i].ToString());
  }
  fs::remove(cache);
}

TEST(AnalyzerCache, EditedFileAloneIsRetokenized) {
  // A scratch tree with two files; touching one leaves the other cached.
  fs::path root = fs::path(::testing::TempDir()) / "st_cache_repo";
  fs::remove_all(root);
  fs::create_directories(root / "src");
  auto write = [&](const std::string& name, const std::string& body) {
    std::ofstream out(root / "src" / name);
    out << body;
  };
  write("a.cc", "int A() { return 1; }\n");
  write("b.cc", "int B() { return 2; }\n");

  AnalyzerOptions options;
  options.root = root.string();
  options.paths = {"src"};
  options.cache_path = (root / "cache.txt").string();

  AnalysisReport cold = MustRun(options);
  EXPECT_EQ(cold.files_retokenized, 2);

  write("b.cc", "#include <random>\nint B() { std::random_device rd; return static_cast<int>(rd()); }\n");
  AnalysisReport warm = MustRun(options);
  EXPECT_EQ(warm.files_retokenized, 1);
  EXPECT_EQ(warm.files_from_cache, 1);
  ASSERT_EQ(warm.findings.size(), 1u);
  EXPECT_EQ(warm.findings[0].Key(), "src/b.cc:2:st-determinism-random");
  fs::remove_all(root);
}

TEST(AnalyzerSarif, JsonCarriesRulesAndLocations) {
  AnalysisReport report = MustRun(FixtureOptions());
  std::string json = SarifJson(report.findings);
  EXPECT_NE(json.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"st_analyze\""), std::string::npos);
  // Every finding's rule and file appear; spot-check one location.
  for (const Finding& f : report.findings) {
    EXPECT_NE(json.find("\"ruleId\": \"" + f.rule + "\""), std::string::npos)
        << f.rule;
    EXPECT_NE(json.find(f.file), std::string::npos) << f.file;
  }
  EXPECT_NE(json.find("\"startLine\": 7"), std::string::npos);
  // Balanced braces — a cheap structural sanity check on the writer.
  long depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(AnalyzerRealTree, RepositoryIsCleanWithoutBaseline) {
  // The self-hosting invariant: the real tree carries zero non-baselined
  // findings. If this fails, run the lint target and fix (or justify and
  // NOLINT) what it reports.
  AnalyzerOptions options;
  options.root = RepoRoot();
  options.paths = {"src", "tests", "tools", "bench"};
  AnalysisReport report = MustRun(options);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.ToString();
  }
  EXPECT_GT(report.files_analyzed, 100);
}

}  // namespace
}  // namespace streamtune::analysis
