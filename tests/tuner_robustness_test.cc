// Every tuner must survive the standard fault plan (10% deploy failures,
// 10% metric dropouts, 5% stragglers) and still finish with an ok()
// outcome; StreamTune must additionally converge backpressure-free without
// blowing its fault-free reconfiguration budget.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/conttune.h"
#include "baselines/ds2.h"
#include "baselines/zerotune.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "sim/chaos_engine.h"
#include "sim/engine.h"
#include "sim/metrics_sanitizer.h"
#include "workloads/cost_config.h"
#include "workloads/pqp.h"

namespace streamtune {
namespace {

JobGraph TestJob() {
  return workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 9);
}

sim::FlinkEngine MakeEngine(const JobGraph& job) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  return sim::FlinkEngine(job, model, sim::SimConfig{});
}

void DeployOnesWithRetry(sim::StreamEngine* engine) {
  std::vector<int> ones(engine->graph().num_operators(), 1);
  ASSERT_TRUE(sim::DeployWithRetry(engine, ones, RetryOptions{}).ok());
}

// Shared fixture: pre-train once for the whole suite.
class TunerRobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<JobGraph> jobs;
    for (int i = 0; i < 6; ++i) {
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
    }
    core::HistoryOptions hist;
    hist.samples_per_job = 12;
    corpus_ = new std::vector<core::HistoryRecord>(
        core::CollectHistory(jobs, hist));
    core::PretrainOptions pre;
    pre.k = 2;
    pre.epochs = 15;
    auto bundle = core::Pretrainer(pre).Run(*corpus_);
    ASSERT_TRUE(bundle.ok());
    bundle_ = std::make_shared<core::PretrainedBundle>(std::move(*bundle));
  }

  static std::unique_ptr<baselines::ZeroTuneTuner> TrainedZeroTune() {
    baselines::ZeroTuneOptions opts;
    opts.epochs = 15;
    auto tuner = std::make_unique<baselines::ZeroTuneTuner>(opts);
    std::vector<baselines::ZeroTuneExample> examples;
    for (const auto& r : *corpus_) {
      baselines::ZeroTuneExample ex;
      ex.graph = r.graph;
      ex.parallelism = r.parallelism;
      ex.cost = r.job_cost;
      examples.push_back(std::move(ex));
    }
    EXPECT_TRUE(tuner->Train(examples).ok());
    return tuner;
  }

  static std::shared_ptr<core::PretrainedBundle> bundle_;
  static std::vector<core::HistoryRecord>* corpus_;
};

std::shared_ptr<core::PretrainedBundle> TunerRobustnessTest::bundle_;
std::vector<core::HistoryRecord>* TunerRobustnessTest::corpus_ = nullptr;

struct ChaosRun {
  baselines::TuningOutcome outcome;
  sim::ChaosStats injected;
  bool severe_backpressure = false;
};

ChaosRun RunUnderChaos(baselines::Tuner* tuner, uint64_t seed) {
  JobGraph job = TestJob();
  sim::FlinkEngine inner = MakeEngine(job);
  sim::ChaosEngine chaos(&inner, sim::FaultPlan::Standard(seed));
  DeployOnesWithRetry(&chaos);
  chaos.ScaleAllSources(8.0);
  auto outcome = tuner->Tune(&chaos);
  EXPECT_TRUE(outcome.ok()) << tuner->name() << " seed " << seed << ": "
                            << outcome.status().ToString();
  ChaosRun run;
  if (outcome.ok()) run.outcome = *outcome;
  run.injected = chaos.stats();
  auto m = inner.Measure();
  if (m.ok()) run.severe_backpressure = m->severe_backpressure;
  return run;
}

TEST_F(TunerRobustnessTest, Ds2SurvivesStandardFaultPlan) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    baselines::Ds2Tuner tuner;
    ChaosRun run = RunUnderChaos(&tuner, seed);
    EXPECT_GE(run.outcome.iterations, 1);
  }
}

TEST_F(TunerRobustnessTest, ContTuneSurvivesStandardFaultPlan) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    baselines::ContTuneTuner tuner;
    ChaosRun run = RunUnderChaos(&tuner, seed);
    EXPECT_GE(run.outcome.iterations, 1);
  }
}

TEST_F(TunerRobustnessTest, ZeroTuneSurvivesStandardFaultPlan) {
  auto tuner = TrainedZeroTune();
  for (uint64_t seed : {1u, 2u, 3u}) {
    ChaosRun run = RunUnderChaos(tuner.get(), seed);
    EXPECT_EQ(1, run.outcome.iterations);
  }
}

TEST_F(TunerRobustnessTest, StreamTuneSurvivesAndConvergesClean) {
  // Fault-free reference run.
  JobGraph job = TestJob();
  sim::FlinkEngine clean_engine = MakeEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(clean_engine.Deploy(ones).ok());
  clean_engine.ScaleAllSources(8.0);
  core::StreamTuneTuner clean_tuner(bundle_);
  auto clean = clean_tuner.Tune(&clean_engine);
  ASSERT_TRUE(clean.ok());

  for (uint64_t seed : {1u, 2u, 3u}) {
    core::StreamTuneTuner tuner(bundle_);
    ChaosRun run = RunUnderChaos(&tuner, seed);
    // Converges backpressure-free on the real (inner) engine...
    EXPECT_FALSE(run.severe_backpressure) << "seed " << seed;
    // ...within twice the fault-free reconfiguration budget.
    EXPECT_LE(run.outcome.reconfigurations,
              2 * std::max(1, clean.value().reconfigurations))
        << "seed " << seed;
  }
}

TEST_F(TunerRobustnessTest, OutcomeCountsSurvivedFaults) {
  // With a deterministic always-dropping-then-recovering plan the outcome
  // must report the retries it performed.
  JobGraph job = TestJob();
  sim::FlinkEngine inner = MakeEngine(job);
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.measure_dropout_prob = 0.5;
  sim::ChaosEngine chaos(&inner, plan);
  DeployOnesWithRetry(&chaos);
  chaos.ScaleAllSources(8.0);
  baselines::Ds2Tuner tuner;
  auto outcome = tuner.Tune(&chaos);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(chaos.stats().measure_dropouts, 0);
  EXPECT_EQ(outcome->retries, outcome->faults_survived);
  EXPECT_GT(outcome->retries, 0);
}

TEST_F(TunerRobustnessTest, FaultFreeRunReportsZeroFaults) {
  JobGraph job = TestJob();
  sim::FlinkEngine engine = MakeEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());
  engine.ScaleAllSources(8.0);
  baselines::Ds2Tuner tuner;
  auto outcome = tuner.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(0, outcome->faults_survived);
  EXPECT_EQ(0, outcome->retries);
  EXPECT_EQ(0, outcome->rollbacks);
}

}  // namespace
}  // namespace streamtune
