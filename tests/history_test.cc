#include <gtest/gtest.h>

#include "core/history.h"
#include "timelysim/timely_simulator.h"
#include "workloads/cost_config.h"
#include "workloads/pqp.h"

namespace streamtune::core {
namespace {

std::vector<JobGraph> SmallJobSet() {
  std::vector<JobGraph> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  return jobs;
}

TEST(HistoryTest, CollectsExpectedCount) {
  HistoryOptions opts;
  opts.samples_per_job = 5;
  auto records = CollectHistory(SmallJobSet(), opts);
  EXPECT_EQ(records.size(), 15u);
}

TEST(HistoryTest, RecordsAreInternallyConsistent) {
  HistoryOptions opts;
  opts.samples_per_job = 6;
  auto records = CollectHistory(SmallJobSet(), opts);
  for (const HistoryRecord& r : records) {
    int n = r.graph.num_operators();
    ASSERT_EQ(static_cast<int>(r.parallelism.size()), n);
    ASSERT_EQ(static_cast<int>(r.source_rates.size()), n);
    ASSERT_EQ(static_cast<int>(r.labels.size()), n);
    for (int v = 0; v < n; ++v) {
      EXPECT_GE(r.parallelism[v], 1);
      EXPECT_LE(r.parallelism[v], opts.max_parallelism);
      EXPECT_GE(r.labels[v], -1);
      EXPECT_LE(r.labels[v], 1);
      if (!r.graph.op(v).is_source()) {
        EXPECT_DOUBLE_EQ(r.source_rates[v], 0.0);
      }
    }
    EXPECT_GE(r.job_cost, 0.0);
    // Clean runs must be fully labeled 0; backpressured runs must contain a
    // bottleneck label.
    if (!r.backpressure) {
      for (int v = 0; v < n; ++v) EXPECT_EQ(r.labels[v], 0);
    } else {
      bool any_bottleneck = false;
      for (int v = 0; v < n; ++v) any_bottleneck |= (r.labels[v] == 1);
      EXPECT_TRUE(any_bottleneck);
    }
  }
}

TEST(HistoryTest, RateMultipliersWithinRange) {
  HistoryOptions opts;
  opts.samples_per_job = 8;
  auto records = CollectHistory(SmallJobSet(), opts);
  double wu = workloads::PqpRateUnit(workloads::PqpTemplate::kLinear);
  for (const HistoryRecord& r : records) {
    for (int v = 0; v < r.graph.num_operators(); ++v) {
      if (!r.graph.op(v).is_source()) continue;
      double mult = r.source_rates[v] / wu;
      EXPECT_GE(mult, opts.min_rate_multiplier - 1e-9);
      EXPECT_LE(mult, opts.max_rate_multiplier + 1e-9);
    }
  }
}

TEST(HistoryTest, DeterministicPerSeed) {
  HistoryOptions opts;
  opts.samples_per_job = 4;
  auto a = CollectHistory(SmallJobSet(), opts);
  auto b = CollectHistory(SmallJobSet(), opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].parallelism, b[i].parallelism);
    EXPECT_EQ(a[i].labels, b[i].labels);
    EXPECT_DOUBLE_EQ(a[i].job_cost, b[i].job_cost);
  }
  opts.seed = 1234;
  auto c = CollectHistory(SmallJobSet(), opts);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].parallelism != c[i].parallelism;
  }
  EXPECT_TRUE(any_diff);
}

TEST(HistoryTest, ContainsBothLabelClasses) {
  HistoryOptions opts;
  opts.samples_per_job = 20;
  auto records = CollectHistory(SmallJobSet(), opts);
  int pos = 0, neg = 0;
  for (const HistoryRecord& r : records) {
    for (int l : r.labels) {
      if (l == 1) ++pos;
      if (l == 0) ++neg;
    }
  }
  EXPECT_GT(pos, 0) << "corpus has no bottleneck examples";
  EXPECT_GT(neg, 0) << "corpus has no negative examples";
}

TEST(HistoryTest, CustomEngineFactoryIsUsed) {
  // Collect on the Timely-like engine: parallelism must respect its
  // 10-worker cap.
  HistoryOptions opts;
  opts.samples_per_job = 5;
  auto factory = [](const JobGraph& job, uint64_t seed) {
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    timelysim::TimelyConfig cfg;
    cfg.noise_seed = seed;
    return std::make_unique<timelysim::TimelySimulator>(job, model, cfg);
  };
  auto records = CollectHistory(SmallJobSet(), opts, factory);
  ASSERT_EQ(records.size(), 15u);
  for (const HistoryRecord& r : records) {
    for (int p : r.parallelism) EXPECT_LE(p, 10);
  }
}

TEST(JobCostTest, PenalizesSaturationAndThrottling) {
  sim::JobMetrics relaxed;
  relaxed.ops.resize(2);
  relaxed.ops[0].busy_frac = 0.1;
  relaxed.ops[1].busy_frac = 0.1;
  relaxed.lambda = 1.0;
  sim::JobMetrics busy = relaxed;
  busy.ops[0].busy_frac = 0.95;
  EXPECT_GT(JobCost(busy), JobCost(relaxed));
  sim::JobMetrics throttled = relaxed;
  throttled.lambda = 0.5;
  EXPECT_GT(JobCost(throttled), JobCost(busy));
}

}  // namespace
}  // namespace streamtune::core
