// Property tests for the ParallelReduce determinism contract: every
// strategy, at every thread count, is bit-identical to the serial left
// fold — on integer, double and struct accumulators. Also covers the
// StrategySelector (clamping, env/options pins, cost-model rules) and the
// execution counters.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel_reduce.h"
#include "common/thread_pool.h"
#include "sim/metrics_aggregator.h"

namespace streamtune {
namespace {

// The pin knob is process-global; every test runs with a known state and
// restores whatever the harness had.
class ParallelReduceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("STREAMTUNE_REDUCE_STRATEGY");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    unsetenv("STREAMTUNE_REDUCE_STRATEGY");
    StrategySelector::ResetStats();
  }
  void TearDown() override {
    if (had_prev_) {
      setenv("STREAMTUNE_REDUCE_STRATEGY", prev_.c_str(), 1);
    } else {
      unsetenv("STREAMTUNE_REDUCE_STRATEGY");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

const int kThreadCounts[] = {1, 2, 8};
const ReduceStrategy kAllStrategies[] = {
    ReduceStrategy::kAuto, ReduceStrategy::kOrderedFold,
    ReduceStrategy::kTreeMerge, ReduceStrategy::kRadixShard};

// Deterministic pseudo-random doubles that are NOT exactly reassociable
// (many mantissa bits set), for the kOrderedOnly cases.
double Noisy(int64_t i) {
  return 1.0 / static_cast<double>(i + 3) + static_cast<double>(i % 7);
}

TEST_F(ParallelReduceTest, IntSumMatchesSerialFoldEverywhere) {
  const int64_t n = 1000;
  int64_t expected = 0;
  for (int64_t i = 0; i < n; ++i) expected += i * i - 3 * i;
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (ReduceStrategy s : kAllStrategies) {
      ReduceOptions opts;
      opts.strategy = s;
      opts.algebra = CombineAlgebra::kCommutative;
      const int64_t got = ParallelReduce(
          &pool, 0, n, int64_t{0}, [](int64_t i) { return i * i - 3 * i; },
          [](int64_t& a, int64_t b) { a += b; }, opts);
      EXPECT_EQ(got, expected) << ToString(s) << " x" << threads;
    }
  }
}

TEST_F(ParallelReduceTest, ExactDoubleSumMatchesSerialFoldEverywhere) {
  // Multiples of 0.25 up to a few thousand add exactly in any order: every
  // partial sum is representable, so kCommutative is an honest declaration.
  const int64_t n = 4096;
  double expected = 0.0;
  for (int64_t i = 0; i < n; ++i) expected += 0.25 * static_cast<double>(i % 97);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (ReduceStrategy s : kAllStrategies) {
      ReduceOptions opts;
      opts.strategy = s;
      opts.algebra = CombineAlgebra::kCommutative;
      const double got = ParallelReduce(
          &pool, 0, n, 0.0,
          [](int64_t i) { return 0.25 * static_cast<double>(i % 97); },
          [](double& a, double b) { a += b; }, opts);
      // Bit-identity, not tolerance.
      EXPECT_EQ(got, expected) << ToString(s) << " x" << threads;
    }
  }
}

TEST_F(ParallelReduceTest, OrderedOnlyDoubleSumClampsToSerialOrder) {
  // An arbitrary double sum is NOT reassociable; declared kOrderedOnly,
  // every requested strategy must clamp to the ordered fold and reproduce
  // the serial fold to the bit.
  const int64_t n = 777;
  double expected = 0.0;
  for (int64_t i = 0; i < n; ++i) expected += Noisy(i);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (ReduceStrategy s : kAllStrategies) {
      ReduceOptions opts;
      opts.strategy = s;
      opts.algebra = CombineAlgebra::kOrderedOnly;
      const double got = ParallelReduce(&pool, 0, n, 0.0, Noisy,
                                        [](double& a, double b) { a += b; },
                                        opts);
      EXPECT_EQ(got, expected) << ToString(s) << " x" << threads;
    }
  }
}

struct ArgMax {
  double value = -1e300;
  int64_t index = -1;
};

TEST_F(ParallelReduceTest, StructArgmaxWithTieBreakEverywhere) {
  // value(i) collides on purpose (i % 50) so the canonical lowest-index
  // tie-break is what makes the combine commutative.
  const int64_t n = 500;
  auto value = [](int64_t i) { return static_cast<double>(i % 50); };
  auto combine = [](ArgMax& a, const ArgMax& b) {
    if (b.value > a.value || (b.value == a.value && b.index < a.index)) a = b;
  };
  ArgMax expected;
  for (int64_t i = 0; i < n; ++i) combine(expected, ArgMax{value(i), i});
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (ReduceStrategy s : kAllStrategies) {
      ReduceOptions opts;
      opts.strategy = s;
      opts.algebra = CombineAlgebra::kCommutative;
      const ArgMax got = ParallelReduce(
          &pool, 0, n, ArgMax{},
          [&](int64_t i) { return ArgMax{value(i), i}; }, combine, opts);
      EXPECT_EQ(got.value, expected.value) << ToString(s) << " x" << threads;
      EXPECT_EQ(got.index, expected.index) << ToString(s) << " x" << threads;
    }
  }
}

TEST_F(ParallelReduceTest, VectorConcatIsAssociativeNotCommutative) {
  // Concatenation preserves index order under ordered fold and tree merge;
  // a radix request must clamp (interleaved shards would reorder items).
  const int64_t n = 300;
  std::vector<int> expected;
  for (int64_t i = 0; i < n; ++i) expected.push_back(static_cast<int>(i));
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (ReduceStrategy s : kAllStrategies) {
      ReduceOptions opts;
      opts.strategy = s;
      opts.algebra = CombineAlgebra::kAssociative;
      const std::vector<int> got = ParallelReduce(
          &pool, 0, n, std::vector<int>{},
          [](int64_t i) { return std::vector<int>{static_cast<int>(i)}; },
          [](std::vector<int>& a, const std::vector<int>& b) {
            a.insert(a.end(), b.begin(), b.end());
          },
          opts);
      EXPECT_EQ(got, expected) << ToString(s) << " x" << threads;
    }
  }
}

TEST_F(ParallelReduceTest, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  for (ReduceStrategy s : kAllStrategies) {
    ReduceOptions opts;
    opts.strategy = s;
    opts.algebra = CombineAlgebra::kCommutative;
    const int got = ParallelReduce(
        &pool, 10, 10, 42, [](int64_t) { return 1; },
        [](int& a, int b) { a += b; }, opts);
    EXPECT_EQ(got, 42);
  }
}

TEST_F(ParallelReduceTest, NullPoolRunsSerialReferenceFold) {
  const int64_t n = 100;
  double expected = 0.0;
  for (int64_t i = 0; i < n; ++i) expected += Noisy(i);
  const double got = ParallelReduce(
      static_cast<ThreadPool*>(nullptr), 0, n, 0.0, Noisy,
      [](double& a, double b) { a += b; });
  EXPECT_EQ(got, expected);
}

TEST_F(ParallelReduceTest, MapRunsExactlyOncePerIndex) {
  // Includes the auto path at n >= 256 so the warmup slice is exercised:
  // the warmup is the fold's serial prefix, not a rehearsal.
  const int64_t n = 1024;
  for (ReduceStrategy s : kAllStrategies) {
    std::vector<std::atomic<int>> calls(n);
    for (auto& c : calls) c.store(0);
    ThreadPool pool(8);
    ReduceOptions opts;
    opts.strategy = s;
    opts.algebra = CombineAlgebra::kCommutative;
    (void)ParallelReduce(
        &pool, 0, n, int64_t{0},
        [&](int64_t i) {
          calls[i].fetch_add(1, std::memory_order_relaxed);
          return i;
        },
        [](int64_t& a, int64_t b) { a += b; }, opts);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(calls[i].load(), 1) << ToString(s) << " index " << i;
    }
  }
}

TEST_F(ParallelReduceTest, ExceptionPropagatesFromMap) {
  ThreadPool pool(4);
  for (ReduceStrategy s : kAllStrategies) {
    ReduceOptions opts;
    opts.strategy = s;
    opts.algebra = CombineAlgebra::kCommutative;
    EXPECT_THROW(
        ParallelReduce(
            &pool, 0, 512, 0,
            [](int64_t i) -> int {
              if (i == 300) throw std::runtime_error("boom");
              return 1;
            },
            [](int& a, int b) { a += b; }, opts),
        std::runtime_error)
        << ToString(s);
  }
}

TEST_F(ParallelReduceTest, EnvPinBeatsOptionsPin) {
  setenv("STREAMTUNE_REDUCE_STRATEGY", "ordered", 1);
  StrategySelector::ResetStats();
  ThreadPool pool(2);
  ReduceOptions opts;
  opts.strategy = ReduceStrategy::kTreeMerge;
  opts.algebra = CombineAlgebra::kCommutative;
  (void)ParallelReduce(&pool, 0, 100, 0, [](int64_t) { return 1; },
                       [](int& a, int b) { a += b; }, opts);
  const StrategyStatsSnapshot snap = StrategySelector::Snapshot();
  EXPECT_EQ(snap.ordered, 1u);
  EXPECT_EQ(snap.tree, 0u);
  EXPECT_EQ(snap.pinned_picks, 1u);
  unsetenv("STREAMTUNE_REDUCE_STRATEGY");
}

TEST_F(ParallelReduceTest, ClampIsCountedAndDowngrades) {
  StrategySelector::ResetStats();
  ThreadPool pool(2);
  ReduceOptions opts;
  opts.strategy = ReduceStrategy::kRadixShard;
  opts.algebra = CombineAlgebra::kAssociative;  // radix illegal -> tree
  (void)ParallelReduce(
      &pool, 0, 100, std::vector<int>{},
      [](int64_t i) { return std::vector<int>{static_cast<int>(i)}; },
      [](std::vector<int>& a, const std::vector<int>& b) {
        a.insert(a.end(), b.begin(), b.end());
      },
      opts);
  const StrategyStatsSnapshot snap = StrategySelector::Snapshot();
  EXPECT_EQ(snap.tree, 1u);
  EXPECT_EQ(snap.radix, 0u);
  EXPECT_EQ(snap.clamped, 1u);
  EXPECT_EQ(snap.pinned_picks, 1u);
}

TEST_F(ParallelReduceTest, SelectorRules) {
  ReduceOptions ordered_only;
  ordered_only.algebra = CombineAlgebra::kOrderedOnly;
  EXPECT_EQ(StrategySelector::Pick(1 << 20, 8, 8, ordered_only),
            ReduceStrategy::kOrderedFold);

  ReduceOptions small;
  small.algebra = CombineAlgebra::kCommutative;
  EXPECT_EQ(StrategySelector::Pick(10, 8, 8, small),
            ReduceStrategy::kOrderedFold);

  ReduceOptions cheap_huge;
  cheap_huge.algebra = CombineAlgebra::kCommutative;
  cheap_huge.cost_hint_ns = 10.0;
  EXPECT_EQ(StrategySelector::Pick(1 << 20, 8, 8, cheap_huge),
            ReduceStrategy::kRadixShard);

  ReduceOptions pricey;
  pricey.algebra = CombineAlgebra::kCommutative;
  pricey.cost_hint_ns = 50000.0;
  EXPECT_EQ(StrategySelector::Pick(1 << 20, 8, 8, pricey),
            ReduceStrategy::kTreeMerge);

  ReduceOptions assoc;
  assoc.algebra = CombineAlgebra::kAssociative;
  assoc.cost_hint_ns = 10.0;
  EXPECT_EQ(StrategySelector::Pick(1 << 20, 8, 8, assoc),
            ReduceStrategy::kTreeMerge);
}

TEST_F(ParallelReduceTest, EnvPinParsing) {
  setenv("STREAMTUNE_REDUCE_STRATEGY", "tree", 1);
  EXPECT_EQ(StrategySelector::EnvPin(), ReduceStrategy::kTreeMerge);
  setenv("STREAMTUNE_REDUCE_STRATEGY", "radix", 1);
  EXPECT_EQ(StrategySelector::EnvPin(), ReduceStrategy::kRadixShard);
  setenv("STREAMTUNE_REDUCE_STRATEGY", "nonsense", 1);
  EXPECT_EQ(StrategySelector::EnvPin(), ReduceStrategy::kAuto);
  unsetenv("STREAMTUNE_REDUCE_STRATEGY");
  EXPECT_EQ(StrategySelector::EnvPin(), ReduceStrategy::kAuto);
}

// A deterministic fake flow solution: the point is the reduction, not the
// solver, so fabricate per-sample results from the index alone.
sim::FlowResult FakeFlow(int64_t i) {
  sim::FlowResult r;
  const size_t ops = 3 + static_cast<size_t>(i % 4);
  r.busy.resize(ops);
  r.saturated.resize(ops);
  r.blocked.resize(ops);
  for (size_t v = 0; v < ops; ++v) {
    r.busy[v] = 0.1 * static_cast<double>((i + static_cast<int64_t>(v)) % 10);
    r.saturated[v] = ((i + static_cast<int64_t>(v)) % 5) == 0;
    r.blocked[v] = ((i + static_cast<int64_t>(v)) % 7) == 0;
  }
  r.lambda = r.saturated[0] ? 0.5 + 0.001 * static_cast<double>(i % 100) : 1.0;
  return r;
}

TEST_F(ParallelReduceTest, MetricsAggregatorStrategiesAgreeBitwise) {
  const int64_t n = 2000;
  std::vector<sim::FlowResult> bank;
  for (int64_t i = 0; i < 64; ++i) bank.push_back(FakeFlow(i));
  const auto solve_at = [&bank](int64_t i) -> const sim::FlowResult& {
    return bank[i % 64];
  };
  const sim::FlowMetricsAccum serial =
      sim::AggregateFlowMetrics(nullptr, n, solve_at);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (ReduceStrategy s : kAllStrategies) {
      const sim::FlowMetricsAccum got =
          sim::AggregateFlowMetrics(&pool, n, solve_at, s);
      EXPECT_EQ(got.samples, serial.samples);
      EXPECT_EQ(got.backpressured_samples, serial.backpressured_samples);
      EXPECT_EQ(got.operators, serial.operators);
      EXPECT_EQ(got.saturated_operators, serial.saturated_operators);
      EXPECT_EQ(got.blocked_operators, serial.blocked_operators);
      EXPECT_EQ(got.min_lambda, serial.min_lambda);
      EXPECT_EQ(got.max_lambda, serial.max_lambda);
      EXPECT_EQ(got.lambda_micros, serial.lambda_micros);
      EXPECT_EQ(got.busy_micros, serial.busy_micros);
    }
  }
  EXPECT_GT(serial.samples, 0);
  EXPECT_GT(serial.backpressure_rate(), 0.0);
  EXPECT_GT(serial.mean_busy(), 0.0);
}

}  // namespace
}  // namespace streamtune
