#include <gtest/gtest.h>

#include "dataflow/feature_encoder.h"
#include "ml/gnn.h"
#include "ml/tape.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

namespace streamtune::ml {
namespace {

JobGraph Q3() {
  return workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                    workloads::Engine::kFlink);
}

GnnConfig SmallConfig() {
  GnnConfig cfg;
  cfg.feature_dim = FeatureEncoder::FeatureDim();
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  return cfg;
}

Matrix Features(const JobGraph& g) {
  FeatureEncoder enc;
  return Matrix::FromRows(enc.EncodeGraph(g));
}

// One-shot tape forwards; the returned Matrix is a copy, safe past the
// tape's lifetime.
Matrix AgnosticValue(const GnnEncoder& enc, const JobGraph& g,
                     const Matrix& features) {
  GraphContext ctx = GraphContext::Build(g);
  Tape tape;
  return tape.value(enc.ForwardAgnostic(&tape, ctx, features));
}

Matrix ForwardValue(const GnnEncoder& enc, const JobGraph& g,
                    const Matrix& features, const Matrix& p_scaled) {
  GraphContext ctx = GraphContext::Build(g);
  Tape tape;
  return tape.value(enc.Forward(&tape, ctx, features, p_scaled));
}

TEST(GnnTest, AdjacencyNormalization) {
  JobGraph g = Q3();
  Matrix up = GnnEncoder::NormalizedUpstreamAdj(g);
  Matrix dn = GnnEncoder::NormalizedDownstreamAdj(g);
  for (int v = 0; v < g.num_operators(); ++v) {
    double up_sum = 0, dn_sum = 0;
    for (int u = 0; u < g.num_operators(); ++u) {
      up_sum += up.at(v, u);
      dn_sum += dn.at(v, u);
    }
    EXPECT_NEAR(up_sum, g.upstream(v).empty() ? 0.0 : 1.0, 1e-12);
    EXPECT_NEAR(dn_sum, g.downstream(v).empty() ? 0.0 : 1.0, 1e-12);
  }
}

TEST(GnnTest, ForwardShapeAndRange) {
  JobGraph g = Q3();
  GnnEncoder enc(SmallConfig());
  Matrix h = AgnosticValue(enc, g, Features(g));
  EXPECT_EQ(h.rows(), g.num_operators());
  EXPECT_EQ(h.cols(), 16);
  // RMS-normalized rows: mean square of each row is 1.
  for (int r = 0; r < h.rows(); ++r) {
    double ms = 0;
    for (int c = 0; c < 16; ++c) ms += h.at(r, c) * h.at(r, c);
    EXPECT_NEAR(ms / 16, 1.0, 1e-4);
  }
}

TEST(GnnTest, FusedEmbeddingsNotSaturated) {
  // The tanh FUSE output must not collapse to +-1 (that would erase
  // per-operator and rate signal).
  JobGraph g = Q3();
  GnnEncoder enc(SmallConfig());
  Matrix h = ForwardValue(enc, g, Features(g),
                          Matrix(g.num_operators(), 1, 0.3));
  int interior = 0;
  for (double v : h.data()) {
    if (std::fabs(v) < 0.9) ++interior;
  }
  EXPECT_GT(interior, static_cast<int>(h.size()) / 2);
}

TEST(GnnTest, DistinctOperatorsGetDistinctEmbeddings) {
  JobGraph g = Q3();
  GnnEncoder enc(SmallConfig());
  Matrix h = AgnosticValue(enc, g, Features(g));
  // Source (op 0) vs join should differ noticeably.
  int join = -1;
  for (int v = 0; v < g.num_operators(); ++v) {
    if (g.op(v).type == OperatorType::kJoin) join = v;
  }
  ASSERT_GE(join, 0);
  double dist = 0;
  for (int c = 0; c < h.cols(); ++c) {
    double d = h.at(0, c) - h.at(join, c);
    dist += d * d;
  }
  EXPECT_GT(std::sqrt(dist), 0.1);
}

TEST(GnnTest, SourceRateChangesEmbeddings) {
  JobGraph g = Q3();
  GnnEncoder enc(SmallConfig());
  FeatureEncoder fenc;
  std::vector<double> low(g.num_operators(), 0.0);
  std::vector<double> high(g.num_operators(), 0.0);
  for (int v = 0; v < g.num_operators(); ++v) {
    if (g.op(v).is_source()) {
      low[v] = 1e4;
      high[v] = 1e6;
    }
  }
  Matrix h_low = AgnosticValue(
      enc, g, Matrix::FromRows(fenc.EncodeGraphWithRates(g, low)));
  Matrix h_high = AgnosticValue(
      enc, g, Matrix::FromRows(fenc.EncodeGraphWithRates(g, high)));
  double dist = h_low.Sub(h_high).SquaredNorm();
  EXPECT_GT(dist, 1e-4);
}

TEST(GnnTest, ParallelismInjectionChangesEmbeddings) {
  JobGraph g = Q3();
  GnnEncoder enc(SmallConfig());
  Matrix f = Features(g);
  Matrix p_low(g.num_operators(), 1, 0.01);
  Matrix p_high(g.num_operators(), 1, 0.8);
  Matrix h1 = ForwardValue(enc, g, f, p_low);
  Matrix h2 = ForwardValue(enc, g, f, p_high);
  EXPECT_GT(h1.Sub(h2).SquaredNorm(), 1e-4);
}

TEST(GnnTest, AgnosticEmbeddingIsParallelismFree) {
  // The agnostic path must not depend on parallelism at all; the FUSE step
  // applies on top of it (paper: parallelism incorporated only after all
  // other features are encoded).
  JobGraph g = Q3();
  GnnEncoder enc(SmallConfig());
  Matrix f = Features(g);
  Matrix pcol(g.num_operators(), 1, 0.3);
  GraphContext ctx = GraphContext::Build(g);
  Tape tape;
  Tape::Ref agn = enc.ForwardAgnostic(&tape, ctx, f);
  Tape::Ref fused = enc.Fuse(&tape, agn, pcol);
  EXPECT_EQ(tape.value(fused).rows(), tape.value(agn).rows());
  EXPECT_EQ(tape.value(fused).cols(),
            tape.value(agn).cols());  // width preserved
  Matrix direct = ForwardValue(enc, g, f, pcol);
  EXPECT_DOUBLE_EQ(direct.Sub(tape.value(fused)).SquaredNorm(), 0.0);
}

TEST(GnnTest, ParamCount) {
  GnnEncoder enc(SmallConfig());
  // input proj (W, b) + per layer (w_up, w_dn, w_self, bias) + FUSE (W, b).
  EXPECT_EQ(enc.Params().size(), 2u + 2u * 4u + 2u);
}

TEST(GnnTest, DeterministicForSeed) {
  JobGraph g = Q3();
  GnnConfig cfg = SmallConfig();
  GnnEncoder a(cfg), b(cfg);
  Matrix f = Features(g);
  EXPECT_DOUBLE_EQ(
      AgnosticValue(a, g, f).Sub(AgnosticValue(b, g, f)).SquaredNorm(), 0.0);
  cfg.seed = 1234;
  GnnEncoder c(cfg);
  EXPECT_GT(
      AgnosticValue(a, g, f).Sub(AgnosticValue(c, g, f)).SquaredNorm(), 0.0);
}

TEST(GnnTest, BatchedForwardMatchesSequential) {
  // The batched packed forward must reproduce the per-job tape forward
  // bit-for-bit (rows are independent in every kernel involved).
  std::vector<JobGraph> graphs;
  for (workloads::NexmarkQuery q : workloads::AllNexmarkQueries()) {
    graphs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  GnnEncoder enc(SmallConfig());
  std::vector<Matrix> features;
  std::vector<GraphContext> contexts;
  features.reserve(graphs.size());
  contexts.reserve(graphs.size());
  for (const JobGraph& g : graphs) {
    features.push_back(Features(g));
    contexts.push_back(GraphContext::Build(g));
  }
  std::vector<BatchedJobInput> jobs;
  for (size_t i = 0; i < graphs.size(); ++i) {
    jobs.push_back(BatchedJobInput{&contexts[i], &features[i]});
  }
  BatchedGnnWorkspace ws;
  std::vector<int> offsets;
  const Matrix& packed = enc.ForwardAgnosticBatched(jobs, &ws, &offsets);
  ASSERT_EQ(offsets.size(), graphs.size() + 1);
  ASSERT_EQ(packed.rows(), offsets.back());
  for (size_t i = 0; i < graphs.size(); ++i) {
    Matrix seq = AgnosticValue(enc, graphs[i], features[i]);
    ASSERT_EQ(offsets[i + 1] - offsets[i], seq.rows());
    for (int r = 0; r < seq.rows(); ++r) {
      for (int c = 0; c < seq.cols(); ++c) {
        EXPECT_EQ(packed.at(offsets[i] + r, c), seq.at(r, c))
            << graphs[i].name() << " op " << r << " dim " << c;
      }
    }
  }
}

TEST(GnnTest, StructureMatters) {
  // The same operator specs arranged differently must embed differently.
  JobGraph chain("chain");
  OperatorSpec src;
  src.name = "s";
  src.type = OperatorType::kSource;
  src.source_rate = 1e5;
  OperatorSpec m1;
  m1.name = "m1";
  m1.type = OperatorType::kMap;
  OperatorSpec m2;
  m2.name = "m2";
  m2.type = OperatorType::kFilter;
  OperatorSpec sink;
  sink.name = "k";
  sink.type = OperatorType::kSink;

  int a0 = chain.AddOperator(src);
  int a1 = chain.AddOperator(m1);
  int a2 = chain.AddOperator(m2);
  int a3 = chain.AddOperator(sink);
  ASSERT_TRUE(chain.AddEdge(a0, a1).ok());
  ASSERT_TRUE(chain.AddEdge(a1, a2).ok());
  ASSERT_TRUE(chain.AddEdge(a2, a3).ok());

  JobGraph fan("fan");
  int b0 = fan.AddOperator(src);
  int b1 = fan.AddOperator(m1);
  int b2 = fan.AddOperator(m2);
  int b3 = fan.AddOperator(sink);
  ASSERT_TRUE(fan.AddEdge(b0, b1).ok());
  ASSERT_TRUE(fan.AddEdge(b0, b2).ok());
  ASSERT_TRUE(fan.AddEdge(b1, b3).ok());
  ASSERT_TRUE(fan.AddEdge(b2, b3).ok());

  GnnEncoder enc(SmallConfig());
  Matrix h_chain = AgnosticValue(enc, chain, Features(chain));
  Matrix h_fan = AgnosticValue(enc, fan, Features(fan));
  EXPECT_GT(h_chain.Sub(h_fan).SquaredNorm(), 1e-6);
}

}  // namespace
}  // namespace streamtune::ml
