#include "graph/ged_cache.h"

#include <gtest/gtest.h>

#include "workloads/pqp.h"

namespace streamtune::graph {
namespace {

JobGraph Linear(int variant) {
  return workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, variant);
}
JobGraph ThreeWay(int variant) {
  return workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, variant);
}

TEST(GedCacheTest, ExactDistanceIsCachedAndServed) {
  GedCache cache;
  JobGraph a = Linear(0), b = Linear(1);
  GedResult direct = ComputeGed(a, b);
  ASSERT_TRUE(direct.exact);

  GedResult first = cache.Compute(a, b);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(first.distance, direct.distance);
  EXPECT_TRUE(first.exact);

  GedResult second = cache.Compute(a, b);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(second.distance, direct.distance);
  EXPECT_TRUE(second.exact);
  EXPECT_EQ(second.expansions, 0u);  // served, not searched
}

TEST(GedCacheTest, HitOnSymmetricPairOrder) {
  GedCache cache;
  JobGraph a = Linear(0), b = ThreeWay(0);
  GedResult ab = cache.Compute(a, b);
  GedResult ba = cache.Compute(b, a);  // ged is symmetric: must hit
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(ab.distance, ba.distance);
  EXPECT_DOUBLE_EQ(ab.distance, ComputeGed(b, a).distance);
}

TEST(GedCacheTest, ExactEntryAnswersThresholdQueries) {
  GedCache cache;
  JobGraph a = Linear(0), b = Linear(2);
  double d = cache.Compute(a, b).distance;
  ASSERT_GT(d, 0.0);

  EXPECT_TRUE(cache.WithinThreshold(a, b, d));
  EXPECT_FALSE(cache.WithinThreshold(a, b, d - 1.0));
  // Both served from the exact entry.
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // A thresholded Compute against the exact entry mirrors a fresh search:
  // beyond tau the result is flagged inexact, within tau it is exact.
  GedOptions opts;
  opts.threshold = d - 1.0;
  GedResult pruned = cache.Compute(a, b, opts);
  EXPECT_FALSE(pruned.exact);
  EXPECT_GT(pruned.distance, opts.threshold);
  opts.threshold = d;
  GedResult within = cache.Compute(a, b, opts);
  EXPECT_TRUE(within.exact);
  EXPECT_DOUBLE_EQ(within.distance, d);
}

TEST(GedCacheTest, PrunedResultIsNotCachedAsExact) {
  GedCache cache;
  JobGraph a = Linear(0), b = ThreeWay(3);
  double d = ComputeGed(a, b).distance;
  ASSERT_GT(d, 1.0) << "need structurally distant graphs for this test";

  // Threshold-pruned: only certifies ged > 1, must not poison exactness.
  EXPECT_FALSE(cache.WithinThreshold(a, b, 1.0));
  EXPECT_EQ(cache.stats().misses, 1u);

  // The exact query must run a real search (miss) and return the true
  // distance, not the pruned upper bound.
  GedResult exact = cache.Compute(a, b);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_TRUE(exact.exact);
  EXPECT_DOUBLE_EQ(exact.distance, d);
}

TEST(GedCacheTest, CertifiedLowerBoundAnswersSmallerThresholds) {
  GedCache cache;
  JobGraph a = Linear(1), b = ThreeWay(1);
  ASSERT_GT(ComputeGed(a, b).distance, 2.0);

  EXPECT_FALSE(cache.WithinThreshold(a, b, 2.0));  // miss: certifies > 2
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_FALSE(cache.WithinThreshold(a, b, 2.0));  // identical query: hit
  EXPECT_FALSE(cache.WithinThreshold(a, b, 1.0));  // smaller tau: hit
  EXPECT_FALSE(cache.WithinThreshold(a, b, 0.0));
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // A larger tau is NOT answered by the certificate; it must search again.
  cache.WithinThreshold(a, b, 100.0);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(GedCacheTest, PrunedComputeServesUpperBoundAboveTau) {
  GedCache cache;
  JobGraph a = Linear(0), b = ThreeWay(2);
  GedOptions opts;
  opts.threshold = 1.0;
  GedResult first = cache.Compute(a, b, opts);
  ASSERT_FALSE(first.exact);

  GedResult served = cache.Compute(a, b, opts);  // certificate hit
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(served.exact);
  EXPECT_GT(served.distance, opts.threshold);
}

TEST(GedCacheTest, WithinThresholdTrueStoresExactDistance) {
  GedCache cache;
  JobGraph a = Linear(0), b = Linear(1);
  double d = ComputeGed(a, b).distance;
  ASSERT_TRUE(cache.WithinThreshold(a, b, d + 5.0));
  // The in-threshold search proved the exact distance; the exact query is
  // now a hit.
  GedResult r = cache.Compute(a, b);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.distance, d);
}

TEST(GedCacheTest, IdenticalGraphsShareOneEntry) {
  GedCache cache;
  // Same structure built twice (different objects, same canonical hash).
  JobGraph a1 = Linear(4), a2 = Linear(4);
  EXPECT_DOUBLE_EQ(cache.Compute(a1, a2).distance, 0.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.Compute(a2, a1).distance, 0.0);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(GedCacheTest, StatsSplitHitsByKind) {
  GedCache cache;
  JobGraph a = Linear(0), b = Linear(1);

  cache.Compute(a, b);  // miss, stores the exact distance
  cache.Compute(a, b);  // exact hit
  EXPECT_EQ(cache.stats().hits_exact, 1u);
  EXPECT_EQ(cache.stats().hits_certified, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // A pruned search against a fresh pair stores only a certificate; serving
  // from it is a certified hit, not an exact one.
  JobGraph c = ThreeWay(0);
  GedOptions opts;
  opts.threshold = 1.0;
  ASSERT_FALSE(cache.Compute(a, c, opts).exact);
  ASSERT_FALSE(cache.Compute(a, c, opts).exact);
  EXPECT_EQ(cache.stats().hits_exact, 1u);
  EXPECT_EQ(cache.stats().hits_certified, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);

  // The aggregate stays the sum of the kinds, and entries mirrors size().
  EXPECT_EQ(cache.stats().hits,
            cache.stats().hits_exact + cache.stats().hits_certified);
  EXPECT_EQ(cache.stats().entries, cache.size());
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 2.0 / 4.0);
}

TEST(GedCacheTest, ClearResetsHitKindsToo) {
  GedCache cache;
  JobGraph a = Linear(2), b = ThreeWay(2);
  cache.Compute(a, b);
  cache.Compute(a, b);
  cache.WithinThreshold(a, ThreeWay(3), 0.5);
  cache.WithinThreshold(a, ThreeWay(3), 0.25);
  ASSERT_GT(cache.stats().hits_exact, 0u);
  ASSERT_GT(cache.stats().hits_certified, 0u);
  cache.Clear();
  EXPECT_EQ(cache.stats().hits_exact, 0u);
  EXPECT_EQ(cache.stats().hits_certified, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(GedCacheTest, ClearResetsEntriesAndStats) {
  GedCache cache;
  cache.Compute(Linear(0), Linear(1));
  cache.Compute(Linear(0), Linear(1));
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.stats().hits, 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.0);
}

TEST(GedCacheTest, CanonicalHashIsStructuralNotNominal) {
  // Same wiring, different operator names / insertion order of edges:
  // hashes must agree. Different operator type: hashes must differ.
  JobGraph g1("one");
  int s1 = g1.AddOperator({.name = "src", .type = OperatorType::kSource});
  int m1 = g1.AddOperator({.name = "m", .type = OperatorType::kMap});
  int k1 = g1.AddOperator({.name = "snk", .type = OperatorType::kSink});
  ASSERT_TRUE(g1.AddEdge(s1, m1).ok());
  ASSERT_TRUE(g1.AddEdge(m1, k1).ok());

  JobGraph g2("two");
  int s2 = g2.AddOperator({.name = "SRC2", .type = OperatorType::kSource});
  int m2 = g2.AddOperator({.name = "MAP2", .type = OperatorType::kMap});
  int k2 = g2.AddOperator({.name = "SINK2", .type = OperatorType::kSink});
  ASSERT_TRUE(g2.AddEdge(m2, k2).ok());
  ASSERT_TRUE(g2.AddEdge(s2, m2).ok());

  EXPECT_EQ(g1.CanonicalHash(), g2.CanonicalHash());

  JobGraph g3("three");
  int s3 = g3.AddOperator({.name = "src", .type = OperatorType::kSource});
  int f3 = g3.AddOperator({.name = "f", .type = OperatorType::kFilter});
  int k3 = g3.AddOperator({.name = "snk", .type = OperatorType::kSink});
  ASSERT_TRUE(g3.AddEdge(s3, f3).ok());
  ASSERT_TRUE(g3.AddEdge(f3, k3).ok());
  EXPECT_NE(g1.CanonicalHash(), g3.CanonicalHash());

  // Edge direction matters (direction modification is a real edit).
  JobGraph g4("four");
  int s4 = g4.AddOperator({.name = "src", .type = OperatorType::kSource});
  int m4 = g4.AddOperator({.name = "m", .type = OperatorType::kMap});
  int k4 = g4.AddOperator({.name = "snk", .type = OperatorType::kSink});
  ASSERT_TRUE(g4.AddEdge(s4, m4).ok());
  ASSERT_TRUE(g4.AddEdge(k4, m4).ok());  // reversed second edge
  EXPECT_NE(g1.CanonicalHash(), g4.CanonicalHash());
}

}  // namespace
}  // namespace streamtune::graph
