#include <gtest/gtest.h>

#include "ml/matrix.h"

namespace streamtune::ml {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 6);
}

TEST(MatrixTest, IdentityAndMatMul) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix i = Matrix::Identity(2);
  Matrix prod = a.MatMul(i);
  EXPECT_TRUE(prod.same_shape(a));
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(prod.at(r, c), a.at(r, c));
  }
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});      // 2x3
  Matrix b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}});  // 3x2
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6);
  Matrix tt = t.Transpose();
  EXPECT_TRUE(tt.same_shape(a));
  EXPECT_DOUBLE_EQ(tt.at(1, 2), 6);
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  EXPECT_DOUBLE_EQ(a.Add(b).at(1, 1), 12);
  EXPECT_DOUBLE_EQ(a.Sub(b).at(0, 0), -4);
  EXPECT_DOUBLE_EQ(a.Hadamard(b).at(1, 0), 21);
  EXPECT_DOUBLE_EQ(a.Scale(-2).at(0, 1), -4);
}

TEST(MatrixTest, RowBroadcastAndSumRows) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix bias = Matrix::FromRows({{10, 20}});
  Matrix r = a.AddRowBroadcast(bias);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 11);
  EXPECT_DOUBLE_EQ(r.at(1, 1), 24);
  Matrix s = a.SumRows();
  EXPECT_EQ(s.rows(), 1);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 4);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 6);
}

TEST(MatrixTest, ConcatAndSliceInverse) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5}, {6}});
  Matrix cat = a.ConcatCols(b);
  EXPECT_EQ(cat.cols(), 3);
  EXPECT_DOUBLE_EQ(cat.at(1, 2), 6);
  Matrix left = cat.SliceCols(0, 2);
  Matrix right = cat.SliceCols(2, 3);
  EXPECT_DOUBLE_EQ(left.at(0, 1), 2);
  EXPECT_DOUBLE_EQ(right.at(0, 0), 5);
}

TEST(MatrixTest, RowAccessors) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(a.Row(1), (std::vector<double>{4, 5, 6}));
  a.SetRow(0, {7, 8, 9});
  EXPECT_DOUBLE_EQ(a.at(0, 2), 9);
}

TEST(MatrixTest, Reductions) {
  Matrix a = Matrix::FromRows({{1, -2}, {3, -4}});
  EXPECT_DOUBLE_EQ(a.SumAll(), -2);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 1 + 4 + 9 + 16);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4);
}

TEST(MatrixTest, GlorotUniformWithinLimit) {
  Rng rng(5);
  Matrix m = Matrix::GlorotUniform(8, 8, &rng);
  double limit = std::sqrt(6.0 / 16.0);
  for (double v : m.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
  EXPECT_GT(m.MaxAbs(), 0.0);  // not all zero
}

}  // namespace
}  // namespace streamtune::ml
