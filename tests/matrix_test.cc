#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ml/matrix.h"

namespace streamtune::ml {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 6);
}

TEST(MatrixTest, IdentityAndMatMul) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix i = Matrix::Identity(2);
  Matrix prod = a.MatMul(i);
  EXPECT_TRUE(prod.same_shape(a));
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(prod.at(r, c), a.at(r, c));
  }
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});      // 2x3
  Matrix b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}});  // 3x2
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6);
  Matrix tt = t.Transpose();
  EXPECT_TRUE(tt.same_shape(a));
  EXPECT_DOUBLE_EQ(tt.at(1, 2), 6);
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  EXPECT_DOUBLE_EQ(a.Add(b).at(1, 1), 12);
  EXPECT_DOUBLE_EQ(a.Sub(b).at(0, 0), -4);
  EXPECT_DOUBLE_EQ(a.Hadamard(b).at(1, 0), 21);
  EXPECT_DOUBLE_EQ(a.Scale(-2).at(0, 1), -4);
}

TEST(MatrixTest, RowBroadcastAndSumRows) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix bias = Matrix::FromRows({{10, 20}});
  Matrix r = a.AddRowBroadcast(bias);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 11);
  EXPECT_DOUBLE_EQ(r.at(1, 1), 24);
  Matrix s = a.SumRows();
  EXPECT_EQ(s.rows(), 1);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 4);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 6);
}

TEST(MatrixTest, ConcatAndSliceInverse) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5}, {6}});
  Matrix cat = a.ConcatCols(b);
  EXPECT_EQ(cat.cols(), 3);
  EXPECT_DOUBLE_EQ(cat.at(1, 2), 6);
  Matrix left = cat.SliceCols(0, 2);
  Matrix right = cat.SliceCols(2, 3);
  EXPECT_DOUBLE_EQ(left.at(0, 1), 2);
  EXPECT_DOUBLE_EQ(right.at(0, 0), 5);
}

TEST(MatrixTest, RowAccessors) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(a.Row(1), (std::vector<double>{4, 5, 6}));
  a.SetRow(0, {7, 8, 9});
  EXPECT_DOUBLE_EQ(a.at(0, 2), 9);
}

TEST(MatrixTest, Reductions) {
  Matrix a = Matrix::FromRows({{1, -2}, {3, -4}});
  EXPECT_DOUBLE_EQ(a.SumAll(), -2);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 1 + 4 + 9 + 16);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4);
}

TEST(MatrixTest, GlorotUniformWithinLimit) {
  Rng rng(5);
  Matrix m = Matrix::GlorotUniform(8, 8, &rng);
  double limit = std::sqrt(6.0 / 16.0);
  for (double v : m.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
  EXPECT_GT(m.MaxAbs(), 0.0);  // not all zero
}

// ---- Kernel layer ----------------------------------------------------------

Matrix RandomMatrix(int r, int c, Rng* rng) {
  Matrix m(r, c);
  for (double& v : m.data()) v = 2 * rng->Uniform() - 1;
  // Sprinkle exact zeros so the kernels' zero-skip path is exercised.
  for (int i = 0; i < r * c; i += 5) m.data()[i] = 0.0;
  return m;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_TRUE(a.same_shape(b));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

// The matmul kernels are bit-identical to their composed references on the
// scalar dispatch; the AVX2-FMA dispatch fuses multiply-adds, so there they
// are held to the 1e-12 relative tolerance contract instead. (The scalar
// path's bit-identity is additionally pinned — under an explicit dispatch
// override — in tests/matrix_simd_test.cc.)
void ExpectMatchesReference(const Matrix& got, const Matrix& want) {
  ASSERT_TRUE(got.same_shape(want));
  if (std::strcmp(ActiveKernelDispatch(), "scalar") == 0) {
    ExpectBitIdentical(got, want);
    return;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    const double tol = 1e-12 * std::max(1.0, std::fabs(want.data()[i]));
    EXPECT_NEAR(got.data()[i], want.data()[i], tol) << "entry " << i;
  }
}

TEST(MatrixKernelTest, MatMulIntoMatchesMatMul) {
  Rng rng(21);
  Matrix a = RandomMatrix(5, 7, &rng);
  Matrix b = RandomMatrix(7, 4, &rng);
  Matrix out;
  MatMulInto(a, b, &out);
  ExpectMatchesReference(out, a.MatMul(b));
}

TEST(MatrixKernelTest, MatMulNTIntoMatchesTransposedComposition) {
  Rng rng(22);
  Matrix a = RandomMatrix(5, 7, &rng);
  Matrix b = RandomMatrix(4, 7, &rng);  // out = a * b^T -> 5x4
  Matrix out;
  MatMulNTInto(a, b, &out);
  ExpectMatchesReference(out, a.MatMul(b.Transpose()));
}

TEST(MatrixKernelTest, MatMulTNIntoMatchesTransposedComposition) {
  Rng rng(23);
  Matrix a = RandomMatrix(7, 5, &rng);
  Matrix b = RandomMatrix(7, 4, &rng);  // out = a^T * b -> 5x4
  Matrix out;
  MatMulTNInto(a, b, &out);
  ExpectMatchesReference(out, a.Transpose().MatMul(b));
}

TEST(MatrixKernelTest, ElementwiseKernelsBitIdentical) {
  Rng rng(24);
  Matrix a = RandomMatrix(4, 6, &rng);
  Matrix b = RandomMatrix(4, 6, &rng);
  Matrix row = RandomMatrix(1, 6, &rng);
  Matrix out;
  AddMatInto(a, b, &out);
  ExpectBitIdentical(out, a.Add(b));
  SubInto(a, b, &out);
  ExpectBitIdentical(out, a.Sub(b));
  HadamardInto(a, b, &out);
  ExpectBitIdentical(out, a.Hadamard(b));
  ScaleInto(a, -1.75, &out);
  ExpectBitIdentical(out, a.Scale(-1.75));
  AddRowBroadcastInto(a, row, &out);
  ExpectBitIdentical(out, a.AddRowBroadcast(row));
  SumRowsInto(a, &out);
  ExpectBitIdentical(out, a.SumRows());
  SliceColsInto(a, 1, 4, &out);
  ExpectBitIdentical(out, a.SliceCols(1, 4));

  Matrix acc = a;
  AddInto(b, &acc);
  ExpectBitIdentical(acc, a.Add(b));
  acc = a;
  AxpyInto(0.5, b, &acc);
  for (size_t i = 0; i < acc.size(); ++i) {
    EXPECT_EQ(acc.data()[i], a.data()[i] + 0.5 * b.data()[i]);
  }
}

TEST(MatrixKernelTest, SetShapeRetainsCapacity) {
  Matrix m(8, 8, 1.0);
  const size_t cap = m.capacity();
  ASSERT_GE(cap, 64u);
  m.SetShape(4, 4);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.capacity(), cap);
  for (double v : m.data()) EXPECT_EQ(v, 0.0);  // zero-filled
  m.Clear();
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.capacity(), cap);
  m.SetShape(8, 8);  // back to the watermark: still no reallocation
  EXPECT_EQ(m.capacity(), cap);
}

}  // namespace
}  // namespace streamtune::ml
