#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/svm.h"

namespace streamtune::ml {
namespace {

// Synthetic task: each sample has a 4-dim embedding whose first component
// encodes a per-operator bottleneck threshold; label 1 iff p < threshold.
std::vector<LabeledSample> ThresholdDataset(int n, Rng* rng) {
  std::vector<LabeledSample> data;
  for (int i = 0; i < n; ++i) {
    double knob = rng->Uniform();  // maps to threshold 10..50
    double threshold = 10 + 40 * knob;
    LabeledSample s;
    s.embedding = {knob, rng->Uniform(), rng->Uniform(), rng->Uniform()};
    s.parallelism = rng->UniformInt(1, 60);
    s.label = s.parallelism < threshold ? 1 : 0;
    data.push_back(std::move(s));
  }
  return data;
}

TEST(SvmTest, RejectsBadInput) {
  MonotonicSvm svm(4);
  EXPECT_FALSE(svm.Fit({}).ok());
  LabeledSample bad;
  bad.embedding = {1.0};  // wrong dimension
  EXPECT_FALSE(svm.Fit({bad}).ok());
}

TEST(SvmTest, LearnsThresholdTask) {
  Rng rng(42);
  auto data = ThresholdDataset(400, &rng);
  MonotonicSvm svm(4);
  ASSERT_TRUE(svm.Fit(data).ok());
  auto test = ThresholdDataset(200, &rng);
  int correct = 0;
  for (const auto& s : test) {
    if (svm.PredictBottleneck(s.embedding, s.parallelism) == (s.label == 1)) {
      ++correct;
    }
  }
  EXPECT_GT(correct, 160) << "accuracy " << correct / 200.0;
}

TEST(SvmTest, ParallelismWeightNonPositive) {
  Rng rng(7);
  MonotonicSvm svm(4);
  ASSERT_TRUE(svm.Fit(ThresholdDataset(200, &rng)).ok());
  EXPECT_LE(svm.parallelism_weight(), 0.0);
}

TEST(SvmTest, HandlesSingleClassData) {
  Rng rng(8);
  auto data = ThresholdDataset(100, &rng);
  for (auto& s : data) s.label = 0;
  MonotonicSvm svm(4);
  ASSERT_TRUE(svm.Fit(data).ok());
  // Prediction still defined and monotone.
  std::vector<double> h{0.5, 0.5, 0.5, 0.5};
  EXPECT_GE(svm.PredictProbability(h, 1), svm.PredictProbability(h, 50));
}

// Property: P(bottleneck | h, p) is non-increasing in p for ANY embedding,
// by construction (w_p <= 0).
class SvmMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(SvmMonotonicityTest, ProbabilityNonIncreasingInParallelism) {
  Rng rng(100 + GetParam());
  MonotonicSvm svm(4);
  ASSERT_TRUE(svm.Fit(ThresholdDataset(150, &rng)).ok());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> h{rng.Uniform(), rng.Uniform(), rng.Uniform(),
                          rng.Uniform()};
    double prev = svm.PredictProbability(h, 1);
    for (int p = 2; p <= 100; ++p) {
      double cur = svm.PredictProbability(h, p);
      EXPECT_LE(cur, prev + 1e-12) << "p=" << p;
      prev = cur;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvmMonotonicityTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(SvmTest, DecisionValueConsistentWithProbability) {
  Rng rng(11);
  MonotonicSvm svm(4);
  ASSERT_TRUE(svm.Fit(ThresholdDataset(150, &rng)).ok());
  std::vector<double> h{0.3, 0.1, 0.9, 0.4};
  for (int p : {1, 10, 50}) {
    double f = svm.DecisionValue(h, p);
    double prob = svm.PredictProbability(h, p);
    EXPECT_EQ(f >= 0, prob >= 0.5);
  }
}

TEST(SvmTest, RffDeterministicPerSeed) {
  SvmConfig cfg;
  MonotonicSvm a(4, cfg), b(4, cfg);
  Rng rng(5);
  auto data = ThresholdDataset(100, &rng);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  std::vector<double> h{0.2, 0.4, 0.6, 0.8};
  EXPECT_DOUBLE_EQ(a.PredictProbability(h, 10), b.PredictProbability(h, 10));
}

}  // namespace
}  // namespace streamtune::ml
