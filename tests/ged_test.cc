#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/ged.h"
#include "workloads/random_dag.h"

namespace streamtune::graph {
namespace {

OperatorSpec Node(const char* name, OperatorType t) {
  OperatorSpec s;
  s.name = name;
  s.type = t;
  if (t == OperatorType::kSource) s.source_rate = 1;
  return s;
}

// src -> map -> sink
JobGraph Chain(OperatorType mid = OperatorType::kMap) {
  JobGraph g("chain");
  int a = g.AddOperator(Node("s", OperatorType::kSource));
  int b = g.AddOperator(Node("m", mid));
  int c = g.AddOperator(Node("k", OperatorType::kSink));
  EXPECT_TRUE(g.AddEdge(a, b).ok());
  EXPECT_TRUE(g.AddEdge(b, c).ok());
  return g;
}

TEST(GedTest, IdenticalGraphsHaveZeroDistance) {
  JobGraph g = Chain();
  GedResult r = ComputeGed(g, g);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST(GedTest, OperatorTypeModificationCostsOne) {
  GedResult r = ComputeGed(Chain(OperatorType::kMap),
                           Chain(OperatorType::kFilter));
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.distance, 1.0);
}

TEST(GedTest, NodePlusEdgeInsertionCostsTwo) {
  JobGraph longer("longer");
  int a = longer.AddOperator(Node("s", OperatorType::kSource));
  int b = longer.AddOperator(Node("m", OperatorType::kMap));
  int b2 = longer.AddOperator(Node("m2", OperatorType::kMap));
  int c = longer.AddOperator(Node("k", OperatorType::kSink));
  ASSERT_TRUE(longer.AddEdge(a, b).ok());
  ASSERT_TRUE(longer.AddEdge(b, b2).ok());
  ASSERT_TRUE(longer.AddEdge(b2, c).ok());
  GedResult r = ComputeGed(Chain(), longer);
  EXPECT_TRUE(r.exact);
  // Optimal script maps the chain's sink onto m2 (relabel, 1), inserts a
  // new sink node (1), and inserts the edge m2->k (1): cost 3. The naive
  // "insert m2 in the middle" script costs 4 (node + edge delete + two
  // edge inserts).
  EXPECT_DOUBLE_EQ(r.distance, 3.0);
}

TEST(GedTest, EdgeDirectionModificationCostsOne) {
  // Two two-node graphs with a single edge in opposite directions.
  // (Not valid streaming jobs, but GED operates on any DAG.)
  JobGraph g1("fwd");
  int a1 = g1.AddOperator(Node("a", OperatorType::kMap));
  int b1 = g1.AddOperator(Node("b", OperatorType::kFilter));
  ASSERT_TRUE(g1.AddEdge(a1, b1).ok());
  JobGraph g2("bwd");
  int a2 = g2.AddOperator(Node("a", OperatorType::kMap));
  int b2 = g2.AddOperator(Node("b", OperatorType::kFilter));
  ASSERT_TRUE(g2.AddEdge(b2, a2).ok());
  GedResult r = ComputeGed(g1, g2);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.distance, 1.0);
}

TEST(GedTest, MappingCostMatchesManualScript) {
  JobGraph g1 = Chain(OperatorType::kMap);
  JobGraph g2 = Chain(OperatorType::kFilter);
  // Identity mapping: only the middle label differs.
  EXPECT_DOUBLE_EQ(MappingCost(g1, g2, {0, 1, 2}), 1.0);
  // Mapping source onto sink etc. costs more.
  EXPECT_GT(MappingCost(g1, g2, {2, 1, 0}), 1.0);
  // Deleting everything: 3 node deletions + 2 edge deletions on g1 side,
  // then 3 insertions + 2 edge insertions for g2.
  EXPECT_DOUBLE_EQ(MappingCost(g1, g2, {-1, -1, -1}), 10.0);
}

TEST(GedTest, GreedyIsUpperBoundAndLabelSetIsLowerBound) {
  Rng rng(1);
  workloads::RandomDagConfig cfg;
  auto dags = workloads::GenerateRandomDags(12, 555, cfg);
  for (size_t i = 0; i + 1 < dags.size(); i += 2) {
    GedResult exact = ComputeGed(dags[i], dags[i + 1]);
    if (!exact.exact) continue;
    EXPECT_GE(GreedyGedUpperBound(dags[i], dags[i + 1]),
              exact.distance - 1e-9);
    EXPECT_LE(LabelSetLowerBound(dags[i], dags[i + 1]),
              exact.distance + 1e-9);
  }
}

// Small DAGs keep the exact A* tractable inside the unit-test budget.
workloads::RandomDagConfig SmallDagConfig() {
  workloads::RandomDagConfig cfg;
  cfg.max_sources = 2;
  cfg.max_chain_length = 2;
  return cfg;
}

TEST(GedTest, DirectAndLsaSearchAgree) {
  auto dags = workloads::GenerateRandomDags(8, 777, SmallDagConfig());
  GedOptions direct;
  direct.use_lower_bound = false;
  GedOptions lsa;
  lsa.use_lower_bound = true;
  for (size_t i = 0; i < dags.size(); ++i) {
    for (size_t j = i + 1; j < dags.size(); ++j) {
      GedResult a = ComputeGed(dags[i], dags[j], direct);
      GedResult b = ComputeGed(dags[i], dags[j], lsa);
      if (a.exact && b.exact) {
        EXPECT_DOUBLE_EQ(a.distance, b.distance)
            << dags[i].name() << " vs " << dags[j].name();
      }
      // The bound must not slow discovery: LSa expands no more states.
      EXPECT_LE(b.expansions, a.expansions);
    }
  }
}

class GedMetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GedMetricPropertyTest, SymmetryHolds) {
  auto dags = workloads::GenerateRandomDags(6, GetParam(), SmallDagConfig());
  for (size_t i = 0; i < dags.size(); ++i) {
    for (size_t j = i + 1; j < dags.size(); ++j) {
      GedResult ab = ComputeGed(dags[i], dags[j]);
      GedResult ba = ComputeGed(dags[j], dags[i]);
      if (ab.exact && ba.exact) {
        EXPECT_DOUBLE_EQ(ab.distance, ba.distance);
      }
    }
  }
}

TEST_P(GedMetricPropertyTest, TriangleInequalityHolds) {
  auto dags =
      workloads::GenerateRandomDags(5, GetParam() ^ 0x77, SmallDagConfig());
  for (size_t i = 0; i < dags.size(); ++i) {
    for (size_t j = 0; j < dags.size(); ++j) {
      for (size_t k = 0; k < dags.size(); ++k) {
        if (i == j || j == k || i == k) continue;
        GedResult ij = ComputeGed(dags[i], dags[j]);
        GedResult jk = ComputeGed(dags[j], dags[k]);
        GedResult ik = ComputeGed(dags[i], dags[k]);
        if (ij.exact && jk.exact && ik.exact) {
          EXPECT_LE(ik.distance, ij.distance + jk.distance + 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GedMetricPropertyTest,
                         ::testing::Values(10, 20, 30));

TEST(GedTest, ThresholdSearchAgreesWithExact) {
  auto dags = workloads::GenerateRandomDags(8, 999, SmallDagConfig());
  for (size_t i = 0; i < dags.size(); ++i) {
    for (size_t j = i + 1; j < dags.size(); ++j) {
      GedResult exact = ComputeGed(dags[i], dags[j]);
      if (!exact.exact) continue;
      for (double tau : {2.0, 5.0, 8.0}) {
        EXPECT_EQ(GedWithinThreshold(dags[i], dags[j], tau),
                  exact.distance <= tau + 1e-9)
            << "tau=" << tau << " d=" << exact.distance;
      }
    }
  }
}

TEST(GedTest, BudgetExhaustionFallsBackToUpperBound) {
  auto dags = workloads::GenerateRandomDags(2, 1234);
  GedOptions opts;
  opts.expansion_budget = 1;  // force the fallback
  GedResult r = ComputeGed(dags[0], dags[1], opts);
  if (!r.exact) {
    EXPECT_DOUBLE_EQ(r.distance, GreedyGedUpperBound(dags[0], dags[1]));
  }
}

TEST(GedTest, SizeDifferenceLowerBoundsDistance) {
  auto small = workloads::GenerateRandomDags(1, 42)[0];
  auto big = workloads::GenerateRandomDags(
      1, 43, workloads::RandomDagConfig{3, 3, 3, 1e3, 1e4})[0];
  GedResult r = ComputeGed(small, big);
  EXPECT_GE(r.distance,
            std::abs(small.num_operators() - big.num_operators()) - 1e-9);
}

}  // namespace
}  // namespace streamtune::graph
