#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace streamtune {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.num_threads(), 8);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(0, 1000, [&](int64_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, DeterministicResultOrdering) {
  // Each index writes its own slot: the gathered result must match the
  // serial loop bit-for-bit, independent of execution interleaving.
  ThreadPool pool(8);
  std::vector<int64_t> out(500, -1);
  pool.ParallelFor(0, 500, [&](int64_t i) { out[i] = i * i; });
  for (int64_t i = 0; i < 500; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, EmptyRangeInvokesNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, [&](int64_t) { calls++; });
  pool.ParallelFor(10, 10, [&](int64_t) { calls++; });
  pool.ParallelFor(5, 3, [&](int64_t) { calls++; });  // inverted: no-op
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadRunsSerialInCallerOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int64_t> order;
  pool.ParallelFor(0, 10, [&](int64_t i) { order.push_back(i); });
  std::vector<int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](int64_t i) {
                         if (i == 17) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  // Index 0 is always claimed first and always throws, so the rethrown
  // exception must carry its message even if later indices also throw.
  ThreadPool pool(8);
  try {
    pool.ParallelFor(0, 64, [&](int64_t i) {
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 8,
                                [](int64_t) {
                                  throw std::logic_error("first run fails");
                                }),
               std::logic_error);
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 100, [&](int64_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::vector<int64_t>> inner_order(8);
  pool.ParallelFor(0, 8, [&](int64_t i) {
    // From inside a worker the nested loop must run serial and in order
    // (no fan-out, no deadlock) — on this pool or any other.
    ThreadPool nested(4);
    EXPECT_EQ(nested.num_threads(), 1);
    pool.ParallelFor(0, 5, [&](int64_t j) { inner_order[i].push_back(j); });
  });
  for (const auto& order : inner_order) {
    EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  }
}

TEST(ThreadPoolTest, SequentialRangesOnOnePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 200, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 199 * 200 / 2);
  }
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(5), 5);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreads(-3), 1);
}

TEST(ThreadPoolTest, InWorkerFlag) {
  EXPECT_FALSE(ThreadPool::InWorker());
  ThreadPool pool(4);
  std::atomic<int> in_worker{0};
  pool.ParallelFor(0, 16, [&](int64_t) {
    if (ThreadPool::InWorker()) in_worker++;
  });
  EXPECT_EQ(in_worker.load(), 16);
  EXPECT_FALSE(ThreadPool::InWorker());
}

}  // namespace
}  // namespace streamtune
