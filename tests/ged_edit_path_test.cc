// Edit-script extraction tests: the explained edit path realizes exactly
// the computed distance.

#include <gtest/gtest.h>

#include "graph/ged.h"
#include "workloads/pqp.h"
#include "workloads/random_dag.h"

namespace streamtune::graph {
namespace {

OperatorSpec Node(const char* name, OperatorType t) {
  OperatorSpec s;
  s.name = name;
  s.type = t;
  if (t == OperatorType::kSource) s.source_rate = 1;
  return s;
}

JobGraph Chain(OperatorType mid = OperatorType::kMap) {
  JobGraph g("chain");
  int a = g.AddOperator(Node("s", OperatorType::kSource));
  int b = g.AddOperator(Node("m", mid));
  int c = g.AddOperator(Node("k", OperatorType::kSink));
  EXPECT_TRUE(g.AddEdge(a, b).ok());
  EXPECT_TRUE(g.AddEdge(b, c).ok());
  return g;
}

TEST(GedEditPathTest, IdenticalGraphsNeedNoEdits) {
  JobGraph g = Chain();
  GedResult r = ComputeGed(g, g);
  ASSERT_TRUE(r.exact);
  ASSERT_EQ(static_cast<int>(r.mapping.size()), g.num_operators());
  auto edits = ExplainEdits(g, g, r.mapping);
  EXPECT_TRUE(edits.empty());
}

TEST(GedEditPathTest, RelabelExplainedAsTypeModification) {
  JobGraph g1 = Chain(OperatorType::kMap);
  JobGraph g2 = Chain(OperatorType::kFilter);
  GedResult r = ComputeGed(g1, g2);
  ASSERT_TRUE(r.exact);
  auto edits = ExplainEdits(g1, g2, r.mapping);
  ASSERT_EQ(edits.size(), 1u);
  EXPECT_EQ(edits[0].kind, EditOp::Kind::kTypeModification);
  EXPECT_NE(edits[0].description.find("Map"), std::string::npos);
  EXPECT_NE(edits[0].description.find("Filter"), std::string::npos);
}

TEST(GedEditPathTest, EditCountEqualsDistance) {
  auto dags = workloads::GenerateRandomDags(
      6, 4242, workloads::RandomDagConfig{1, 2, 2, 1e3, 1e4});
  for (size_t i = 0; i < dags.size(); ++i) {
    for (size_t j = 0; j < dags.size(); ++j) {
      GedResult r = ComputeGed(dags[i], dags[j]);
      if (!r.exact) continue;
      ASSERT_EQ(static_cast<int>(r.mapping.size()),
                dags[i].num_operators());
      auto edits = ExplainEdits(dags[i], dags[j], r.mapping);
      EXPECT_DOUBLE_EQ(static_cast<double>(edits.size()), r.distance)
          << dags[i].name() << " -> " << dags[j].name();
      // Cross-check against MappingCost.
      EXPECT_DOUBLE_EQ(MappingCost(dags[i], dags[j], r.mapping), r.distance);
    }
  }
}

TEST(GedEditPathTest, MappingIsValidAssignment) {
  JobGraph a = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 0);
  JobGraph b = workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 0);
  GedResult r = ComputeGed(a, b);
  ASSERT_FALSE(r.mapping.empty());
  std::vector<bool> used(b.num_operators(), false);
  for (int v : r.mapping) {
    if (v < 0) continue;
    ASSERT_LT(v, b.num_operators());
    EXPECT_FALSE(used[v]) << "g2 node matched twice";
    used[v] = true;
  }
}

TEST(GedEditPathTest, DirectionModificationExplained) {
  JobGraph g1("fwd");
  int a1 = g1.AddOperator(Node("a", OperatorType::kMap));
  int b1 = g1.AddOperator(Node("b", OperatorType::kFilter));
  ASSERT_TRUE(g1.AddEdge(a1, b1).ok());
  JobGraph g2("bwd");
  int a2 = g2.AddOperator(Node("a", OperatorType::kMap));
  int b2 = g2.AddOperator(Node("b", OperatorType::kFilter));
  ASSERT_TRUE(g2.AddEdge(b2, a2).ok());
  GedResult r = ComputeGed(g1, g2);
  ASSERT_TRUE(r.exact);
  auto edits = ExplainEdits(g1, g2, r.mapping);
  ASSERT_EQ(edits.size(), 1u);
  EXPECT_EQ(edits[0].kind, EditOp::Kind::kDirectionModification);
}

TEST(GedEditPathTest, KindNamesAreStable) {
  EXPECT_STREQ(EditOpKindName(EditOp::Kind::kNodeInsertion),
               "node-insertion");
  EXPECT_STREQ(EditOpKindName(EditOp::Kind::kDirectionModification),
               "direction-modification");
}

}  // namespace
}  // namespace streamtune::graph
