// Finite-difference verification of every autograd op, plus structural
// tests (shared subexpressions, masked losses).

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "ml/autograd.h"

namespace streamtune::ml {
namespace {

Matrix RandomMatrix(int r, int c, Rng* rng, double scale = 1.0) {
  Matrix m(r, c);
  for (double& v : m.data()) v = scale * (2 * rng->Uniform() - 1);
  return m;
}

// Checks d(loss)/d(param) against central finite differences, where the
// loss is built by `make_loss` from the parameter node.
void CheckGradient(Var param,
                   const std::function<Var(const Var&)>& make_loss,
                   double tol = 1e-5) {
  Var loss = make_loss(param);
  Backward(loss);
  ASSERT_TRUE(param->has_grad());
  Matrix analytic = param->grad;

  const double eps = 1e-6;
  for (size_t i = 0; i < param->value.size(); ++i) {
    double saved = param->value.data()[i];
    param->value.data()[i] = saved + eps;
    double up = make_loss(param)->value.at(0, 0);
    param->value.data()[i] = saved - eps;
    double down = make_loss(param)->value.at(0, 0);
    param->value.data()[i] = saved;
    double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, tol)
        << "entry " << i << " of " << param->value.size();
  }
}

TEST(AutogradTest, MatMulGradient) {
  Rng rng(1);
  Var a = Param(RandomMatrix(3, 4, &rng));
  Matrix b_val = RandomMatrix(4, 2, &rng);
  CheckGradient(a, [&](const Var& p) {
    return SumAll(MatMul(p, Constant(b_val)));
  });
  Var b = Param(b_val);
  Matrix a_val = RandomMatrix(3, 4, &rng);
  CheckGradient(b, [&](const Var& p) {
    return SumAll(MatMul(Constant(a_val), p));
  });
}

TEST(AutogradTest, AddSubGradient) {
  Rng rng(2);
  Matrix other = RandomMatrix(2, 3, &rng);
  Var a = Param(RandomMatrix(2, 3, &rng));
  CheckGradient(a, [&](const Var& p) {
    return SumAll(Add(p, Constant(other)));
  });
  CheckGradient(a, [&](const Var& p) {
    return SumAll(Sub(Constant(other), p));
  });
}

TEST(AutogradTest, HadamardAndScaleGradient) {
  Rng rng(3);
  Matrix other = RandomMatrix(2, 2, &rng);
  Var a = Param(RandomMatrix(2, 2, &rng));
  CheckGradient(a, [&](const Var& p) {
    return SumAll(Hadamard(p, Constant(other)));
  });
  CheckGradient(a, [&](const Var& p) { return SumAll(Scale(p, -2.5)); });
}

TEST(AutogradTest, RowBroadcastGradient) {
  Rng rng(4);
  Matrix big = RandomMatrix(4, 3, &rng);
  Var bias = Param(RandomMatrix(1, 3, &rng));
  CheckGradient(bias, [&](const Var& p) {
    // Square so the bias gradient is input-dependent.
    Var x = AddRowBroadcast(Constant(big), p);
    return SumAll(Hadamard(x, x));
  });
}

TEST(AutogradTest, ActivationGradients) {
  Rng rng(5);
  // Keep away from ReLU's kink for finite differences.
  Matrix val = RandomMatrix(3, 3, &rng);
  for (double& v : val.data()) {
    if (std::fabs(v) < 0.05) v = 0.1;
  }
  Var a = Param(val);
  CheckGradient(a, [&](const Var& p) { return SumAll(Relu(p)); });
  CheckGradient(a, [&](const Var& p) { return SumAll(TanhOp(p)); });
  CheckGradient(a, [&](const Var& p) { return SumAll(SigmoidOp(p)); });
}

TEST(AutogradTest, ConcatColsGradient) {
  Rng rng(6);
  Matrix right = RandomMatrix(3, 2, &rng);
  Var a = Param(RandomMatrix(3, 4, &rng));
  CheckGradient(a, [&](const Var& p) {
    Var cat = ConcatCols(p, Constant(right));
    return SumAll(Hadamard(cat, cat));
  });
  Var b = Param(right);
  Matrix left = RandomMatrix(3, 4, &rng);
  CheckGradient(b, [&](const Var& p) {
    Var cat = ConcatCols(Constant(left), p);
    return SumAll(Hadamard(cat, cat));
  });
}

TEST(AutogradTest, MeanRowsGradient) {
  Rng rng(7);
  Var a = Param(RandomMatrix(5, 3, &rng));
  CheckGradient(a, [&](const Var& p) {
    Var m = MeanRows(p);
    return SumAll(Hadamard(m, m));
  });
}

TEST(AutogradTest, RmsNormRowsGradient) {
  Rng rng(8);
  Var a = Param(RandomMatrix(4, 6, &rng));
  Rng wrng(99);
  Matrix weights = RandomMatrix(4, 6, &wrng);
  CheckGradient(a, [&](const Var& p) {
    // Weighted sum so per-entry gradients are distinguishable.
    return SumAll(Hadamard(RmsNormRows(p), Constant(weights)));
  });
}

TEST(AutogradTest, RmsNormRowsNormalizes) {
  Rng rng(9);
  Var a = Constant(RandomMatrix(3, 8, &rng, 10.0));
  Var n = RmsNormRows(a);
  for (int r = 0; r < 3; ++r) {
    double ms = 0;
    for (int c = 0; c < 8; ++c) ms += n->value.at(r, c) * n->value.at(r, c);
    EXPECT_NEAR(ms / 8, 1.0, 1e-6);
  }
}

TEST(AutogradTest, BceWithLogitsGradientAndValue) {
  Rng rng(10);
  Matrix targets(4, 1);
  targets.at(0, 0) = 1;
  targets.at(2, 0) = 1;
  Matrix mask(4, 1, 1.0);
  mask.at(3, 0) = 0.0;  // one unlabeled entry
  Var logits = Param(RandomMatrix(4, 1, &rng, 2.0));
  CheckGradient(logits, [&](const Var& p) {
    return BceWithLogitsMasked(p, targets, mask);
  });

  // Value check: logit 0 with any target gives log(2).
  Var zero = Constant(Matrix(1, 1, 0.0));
  Matrix t1(1, 1, 1.0), m1(1, 1, 1.0);
  EXPECT_NEAR(BceWithLogitsMasked(zero, t1, m1)->value.at(0, 0),
              std::log(2.0), 1e-12);
}

TEST(AutogradTest, BceAllMaskedIsZeroLoss) {
  Matrix targets(2, 1), mask(2, 1, 0.0);
  Var logits = Param(Matrix(2, 1, 3.0));
  Var loss = BceWithLogitsMasked(logits, targets, mask);
  EXPECT_DOUBLE_EQ(loss->value.at(0, 0), 0.0);
  Backward(loss);  // must not crash
}

TEST(AutogradTest, MseLossGradient) {
  Rng rng(11);
  Matrix target = RandomMatrix(3, 2, &rng);
  Var pred = Param(RandomMatrix(3, 2, &rng));
  CheckGradient(pred, [&](const Var& p) { return MseLoss(p, target); });
  // Zero loss at the target itself.
  Var exact = Param(target);
  EXPECT_DOUBLE_EQ(MseLoss(exact, target)->value.at(0, 0), 0.0);
}

TEST(AutogradTest, SharedSubexpressionAccumulatesGradient) {
  // loss = sum(x + x) => dloss/dx = 2.
  Var x = Param(Matrix(2, 2, 1.0));
  Var loss = SumAll(Add(x, x));
  Backward(loss);
  for (double g : x->grad.data()) EXPECT_DOUBLE_EQ(g, 2.0);
}

TEST(AutogradTest, BackwardClearsStaleGradients) {
  Var x = Param(Matrix(1, 1, 2.0));
  Var loss1 = SumAll(Scale(x, 3.0));
  Backward(loss1);
  EXPECT_DOUBLE_EQ(x->grad.at(0, 0), 3.0);
  // A second independent backward pass over the same parameter must not
  // accumulate on top of the previous gradient.
  Var loss2 = SumAll(Scale(x, 5.0));
  Backward(loss2);
  EXPECT_DOUBLE_EQ(x->grad.at(0, 0), 5.0);
}

TEST(AutogradTest, ConstantsReceiveNoParamTreatment) {
  Var c = Constant(Matrix(2, 2, 1.0));
  EXPECT_FALSE(c->requires_grad);
  Var p = Param(Matrix(2, 2, 1.0));
  EXPECT_TRUE(p->requires_grad);
}

}  // namespace
}  // namespace streamtune::ml
