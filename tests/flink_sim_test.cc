#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

namespace streamtune::sim {
namespace {

FlinkSimulator MakeSim(const JobGraph& job, SimConfig cfg = {}) {
  PerfModel model(job, workloads::CostConfigFor(job));
  return FlinkSimulator(job, model, cfg);
}

JobGraph Q3() {
  return workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                    workloads::Engine::kFlink);
}

TEST(FlinkSimTest, DeployValidation) {
  FlinkSimulator sim = MakeSim(Q3());
  EXPECT_FALSE(sim.Deploy({1, 2}).ok());  // wrong arity
  std::vector<int> zeros(sim.graph().num_operators(), 0);
  EXPECT_FALSE(sim.Deploy(zeros).ok());  // below 1
  std::vector<int> huge(sim.graph().num_operators(), 101);
  EXPECT_FALSE(sim.Deploy(huge).ok());  // above the cap
  std::vector<int> ones(sim.graph().num_operators(), 1);
  EXPECT_TRUE(sim.Deploy(ones).ok());
}

TEST(FlinkSimTest, MeasureRequiresDeploy) {
  FlinkSimulator sim = MakeSim(Q3());
  EXPECT_FALSE(sim.Measure().ok());
}

TEST(FlinkSimTest, ReconfigurationCounting) {
  FlinkSimulator sim = MakeSim(Q3());
  std::vector<int> p(sim.graph().num_operators(), 1);
  ASSERT_TRUE(sim.Deploy(p).ok());
  EXPECT_EQ(sim.deployment_count(), 1);
  EXPECT_EQ(sim.reconfiguration_count(), 0);  // initial deploy not counted
  ASSERT_TRUE(sim.Deploy(p).ok());            // unchanged
  EXPECT_EQ(sim.reconfiguration_count(), 0);
  p[0] = 2;
  ASSERT_TRUE(sim.Deploy(p).ok());
  EXPECT_EQ(sim.reconfiguration_count(), 1);
  EXPECT_GT(sim.virtual_minutes(), 0.0);
  sim.ResetCounters();
  EXPECT_EQ(sim.deployment_count(), 0);
  EXPECT_EQ(sim.reconfiguration_count(), 0);
  EXPECT_DOUBLE_EQ(sim.virtual_minutes(), 0.0);
}

TEST(FlinkSimTest, TimeFractionsFormPartition) {
  FlinkSimulator sim = MakeSim(Q3());
  std::vector<int> p(sim.graph().num_operators(), 2);
  ASSERT_TRUE(sim.Deploy(p).ok());
  auto m = sim.Measure();
  ASSERT_TRUE(m.ok());
  for (const OperatorMetrics& om : m->ops) {
    EXPECT_GE(om.busy_frac, 0.0);
    EXPECT_LE(om.busy_frac, 1.0);
    EXPECT_GE(om.idle_frac, 0.0);
    EXPECT_GE(om.backpressured_frac, 0.0);
    EXPECT_LE(om.busy_frac + om.idle_frac + om.backpressured_frac,
              1.0 + 1e-9);
  }
}

TEST(FlinkSimTest, OracleParallelismEliminatesBackpressure) {
  for (auto q : workloads::AllNexmarkQueries()) {
    JobGraph job = workloads::BuildNexmarkJob(q, workloads::Engine::kFlink);
    FlinkSimulator sim = MakeSim(job);
    for (double mult : {1.0, 5.0, 10.0}) {
      sim.ScaleAllSources(mult);
      std::vector<int> oracle = sim.OracleParallelism();
      ASSERT_TRUE(sim.Deploy(oracle).ok());
      auto m = sim.Measure();
      ASSERT_TRUE(m.ok());
      EXPECT_FALSE(m->job_backpressure)
          << workloads::NexmarkQueryName(q) << " at " << mult << "x";
      EXPECT_DOUBLE_EQ(m->lambda, 1.0);
    }
  }
}

TEST(FlinkSimTest, OracleIsMinimal) {
  // One degree less on any non-trivial operator must reintroduce a
  // bottleneck at that operator.
  JobGraph job = Q3();
  FlinkSimulator sim = MakeSim(job);
  sim.ScaleAllSources(10.0);
  std::vector<int> oracle = sim.OracleParallelism();
  for (int v = 0; v < job.num_operators(); ++v) {
    if (oracle[v] <= 1) continue;
    std::vector<int> p = oracle;
    p[v] -= 1;
    ASSERT_TRUE(sim.Deploy(p).ok());
    auto m = sim.Measure();
    ASSERT_TRUE(m.ok());
    EXPECT_TRUE(m->ops[v].saturated) << "operator " << v;
  }
}

TEST(FlinkSimTest, UnderProvisioningCreatesBackpressure) {
  FlinkSimulator sim = MakeSim(Q3());
  sim.ScaleAllSources(10.0);
  std::vector<int> ones(sim.graph().num_operators(), 1);
  ASSERT_TRUE(sim.Deploy(ones).ok());
  auto m = sim.Measure();
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->job_backpressure);
  EXPECT_LT(m->lambda, 1.0);
}

TEST(FlinkSimTest, SetSourceRateValidation) {
  FlinkSimulator sim = MakeSim(Q3());
  EXPECT_FALSE(sim.SetSourceRate(99, 10).ok());
  EXPECT_FALSE(sim.SetSourceRate(0, -1).ok());
  // Operator 0 is a source in Q3; find a non-source for the failure case.
  int non_source = -1;
  for (int v = 0; v < sim.graph().num_operators(); ++v) {
    if (!sim.graph().op(v).is_source()) {
      non_source = v;
      break;
    }
  }
  ASSERT_GE(non_source, 0);
  EXPECT_FALSE(sim.SetSourceRate(non_source, 10).ok());
  for (int v = 0; v < sim.graph().num_operators(); ++v) {
    if (sim.graph().op(v).is_source()) {
      EXPECT_TRUE(sim.SetSourceRate(v, 123.0).ok());
      EXPECT_DOUBLE_EQ(sim.source_rates()[v], 123.0);
    }
  }
}

TEST(FlinkSimTest, ScaleAllSourcesMultipliesBaseRates) {
  JobGraph job = Q3();
  FlinkSimulator sim = MakeSim(job);
  sim.ScaleAllSources(3.0);
  for (int v = 0; v < job.num_operators(); ++v) {
    if (job.op(v).is_source()) {
      EXPECT_DOUBLE_EQ(sim.source_rates()[v], 3.0 * job.op(v).source_rate);
    }
  }
  // Scaling is relative to the base rates, not cumulative.
  sim.ScaleAllSources(2.0);
  for (int v = 0; v < job.num_operators(); ++v) {
    if (job.op(v).is_source()) {
      EXPECT_DOUBLE_EQ(sim.source_rates()[v], 2.0 * job.op(v).source_rate);
    }
  }
}

TEST(FlinkSimTest, UsefulTimeNoiseBoundedAndCentered) {
  SimConfig cfg;
  cfg.useful_time_noise = 0.08;
  FlinkSimulator sim = MakeSim(Q3(), cfg);
  std::vector<int> p(sim.graph().num_operators(), 4);
  ASSERT_TRUE(sim.Deploy(p).ok());
  double ratio_sum = 0;
  int count = 0;
  for (int i = 0; i < 200; ++i) {
    auto m = sim.Measure();
    ASSERT_TRUE(m.ok());
    for (const OperatorMetrics& om : m->ops) {
      if (om.busy_frac < 1e-6) continue;
      double ratio = om.useful_time_frac_observed / om.busy_frac;
      EXPECT_GT(ratio, 1.0 - 0.25);
      EXPECT_LT(ratio, 1.0 + 0.25);
      ratio_sum += ratio;
      ++count;
    }
  }
  EXPECT_NEAR(ratio_sum / count, 1.0, 0.02);
}

TEST(FlinkSimTest, ZeroNoiseGivesExactUsefulTime) {
  SimConfig cfg;
  cfg.useful_time_noise = 0.0;
  FlinkSimulator sim = MakeSim(Q3(), cfg);
  std::vector<int> p(sim.graph().num_operators(), 4);
  ASSERT_TRUE(sim.Deploy(p).ok());
  auto m = sim.Measure();
  ASSERT_TRUE(m.ok());
  for (const OperatorMetrics& om : m->ops) {
    if (om.busy_frac < 1e-4) continue;
    EXPECT_DOUBLE_EQ(om.useful_time_frac_observed, om.busy_frac);
  }
}

TEST(FlinkEngineTest, ImplementsStreamEngineInterface) {
  JobGraph job = Q3();
  PerfModel model(job, workloads::CostConfigFor(job));
  FlinkEngine engine(job, model, SimConfig{});
  StreamEngine* base = &engine;
  EXPECT_EQ(base->max_parallelism(), 100);
  std::vector<int> ones(job.num_operators(), 1);
  EXPECT_TRUE(base->Deploy(ones).ok());
  EXPECT_TRUE(base->Measure().ok());
  EXPECT_EQ(base->parallelism(), ones);
  EXPECT_EQ(static_cast<int>(base->current_source_rates().size()),
            job.num_operators());
}

}  // namespace
}  // namespace streamtune::sim
