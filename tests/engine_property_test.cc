// Property-based invariants of the simulated engines over randomized jobs
// and deployments.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/engine.h"
#include "timelysim/timely_simulator.h"
#include "workloads/cost_config.h"
#include "workloads/random_dag.h"

namespace streamtune {
namespace {

class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePropertyTest, FlinkMetricsInvariants) {
  Rng rng(GetParam());
  auto jobs = workloads::GenerateRandomDags(4, GetParam() * 31 + 7);
  for (const JobGraph& job : jobs) {
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    sim::FlinkSimulator engine(job, model, sim::SimConfig{});
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<int> p(job.num_operators());
      for (int& x : p) x = rng.UniformInt(1, 100);
      ASSERT_TRUE(engine.Deploy(p).ok());
      engine.ScaleAllSources(rng.Uniform(0.5, 10.0));
      auto m = engine.Measure();
      ASSERT_TRUE(m.ok());
      // Lambda in (0, 1]; total parallelism consistent.
      EXPECT_GT(m->lambda, 0.0);
      EXPECT_LE(m->lambda, 1.0);
      int total = 0;
      for (int x : p) total += x;
      EXPECT_EQ(m->total_parallelism, total);
      EXPECT_GE(m->used_cores, 0.0);
      EXPECT_LE(m->used_cores, total + 1e-9);
      for (const auto& om : m->ops) {
        // Time fractions partition the second.
        EXPECT_GE(om.busy_frac, 0.0);
        EXPECT_LE(om.busy_frac, 1.0 + 1e-9);
        EXPECT_GE(om.idle_frac, 0.0);
        EXPECT_GE(om.backpressured_frac, 0.0);
        EXPECT_LE(om.busy_frac + om.idle_frac + om.backpressured_frac,
                  1.0 + 1e-6);
        // Achieved rates never exceed demand.
        EXPECT_LE(om.input_rate, om.desired_input_rate + 1e-6);
      }
      // Severe backpressure implies job backpressure.
      if (m->severe_backpressure) {
        EXPECT_TRUE(m->job_backpressure);
      }
    }
  }
}

TEST_P(EnginePropertyTest, FlinkFlowConservation) {
  Rng rng(GetParam() ^ 0x55);
  auto jobs = workloads::GenerateRandomDags(3, GetParam() * 17 + 3);
  for (const JobGraph& job : jobs) {
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    sim::SimConfig cfg;
    cfg.useful_time_noise = 0;
    sim::FlinkSimulator engine(job, model, cfg);
    std::vector<int> p(job.num_operators());
    for (int& x : p) x = rng.UniformInt(1, 50);
    ASSERT_TRUE(engine.Deploy(p).ok());
    auto m = engine.Measure();
    ASSERT_TRUE(m.ok());
    for (int v = 0; v < job.num_operators(); ++v) {
      // Output = input * selectivity at the achieved fixed point.
      EXPECT_NEAR(m->ops[v].output_rate,
                  m->ops[v].input_rate * model.Selectivity(v),
                  1e-6 * (1 + m->ops[v].output_rate));
      // Each non-source operator's achieved input equals the sum of its
      // upstream achieved outputs (flow conservation).
      if (!job.upstream(v).empty()) {
        double upstream_out = 0;
        for (int u : job.upstream(v)) upstream_out += m->ops[u].output_rate;
        EXPECT_NEAR(m->ops[v].input_rate, upstream_out,
                    1e-6 * (1 + upstream_out));
      }
    }
  }
}

TEST_P(EnginePropertyTest, LambdaMonotoneInParallelism) {
  // Raising any operator's parallelism must not lower the sustained
  // throughput fraction.
  Rng rng(GetParam() ^ 0x99);
  auto jobs = workloads::GenerateRandomDags(3, GetParam() * 13 + 1);
  for (const JobGraph& job : jobs) {
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    sim::SimConfig cfg;
    cfg.useful_time_noise = 0;
    sim::FlinkSimulator engine(job, model, cfg);
    engine.ScaleAllSources(8.0);
    std::vector<int> p(job.num_operators());
    for (int& x : p) x = rng.UniformInt(1, 10);
    ASSERT_TRUE(engine.Deploy(p).ok());
    double lambda_before = engine.Measure()->lambda;
    int v = rng.UniformInt(0, job.num_operators() - 1);
    p[v] = std::min(100, p[v] * 3);
    ASSERT_TRUE(engine.Deploy(p).ok());
    double lambda_after = engine.Measure()->lambda;
    EXPECT_GE(lambda_after, lambda_before - 1e-9);
  }
}

TEST_P(EnginePropertyTest, TimelyMetricsInvariants) {
  Rng rng(GetParam() ^ 0x42);
  auto jobs = workloads::GenerateRandomDags(3, GetParam() * 19 + 11);
  for (const JobGraph& job : jobs) {
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    timelysim::TimelySimulator engine(job, model, timelysim::TimelyConfig{});
    std::vector<int> p(job.num_operators());
    for (int& x : p) x = rng.UniformInt(1, 10);
    ASSERT_TRUE(engine.Deploy(p).ok());
    engine.ScaleAllSources(rng.Uniform(0.5, 10.0));
    auto m = engine.Measure();
    ASSERT_TRUE(m.ok());
    EXPECT_GT(m->lambda, 0.0);
    EXPECT_LE(m->lambda, 1.0);
    for (const auto& om : m->ops) {
      EXPECT_GE(om.busy_frac, 0.0);
      EXPECT_LE(om.busy_frac, 1.0 + 1e-9);
      // Spinning workers: observed useful time never below true busy time.
      EXPECT_GE(om.useful_time_frac_observed, om.busy_frac * 0.8);
    }
    // Epoch latencies are positive and finite.
    auto trace = engine.RunEpochs(20);
    ASSERT_TRUE(trace.ok());
    for (double lat : trace->latencies) {
      EXPECT_GT(lat, 0.0);
      EXPECT_LT(lat, 1e7);
    }
  }
}

TEST_P(EnginePropertyTest, OracleIsBackpressureFreeOnRandomJobs) {
  auto jobs = workloads::GenerateRandomDags(4, GetParam() * 23 + 5);
  for (const JobGraph& job : jobs) {
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    sim::SimConfig cfg;
    cfg.useful_time_noise = 0;
    sim::FlinkSimulator engine(job, model, cfg);
    for (double mult : {1.0, 4.0, 10.0}) {
      engine.ScaleAllSources(mult);
      std::vector<int> oracle = engine.OracleParallelism();
      bool attainable = true;
      for (size_t v = 0; v < oracle.size(); ++v) {
        // The oracle may clamp at max when even that is insufficient.
        if (model.ProcessingAbility(static_cast<int>(v), oracle[v]) <
            1e-9) {
          attainable = false;
        }
      }
      ASSERT_TRUE(attainable);
      ASSERT_TRUE(engine.Deploy(oracle).ok());
      auto m = engine.Measure();
      ASSERT_TRUE(m.ok());
      // Unless an operator was clamped at the physical cap, no backpressure.
      bool clamped = false;
      for (int p : oracle) clamped |= (p == 100);
      if (!clamped) {
        EXPECT_FALSE(m->job_backpressure) << job.name() << " @" << mult;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace streamtune
