#include <gtest/gtest.h>

#include "ml/gaussian_process.h"

namespace streamtune::ml {
namespace {

TEST(CholeskyTest, KnownDecomposition) {
  // A = L L^T with L = [[2,0],[1,3]].
  Matrix a = Matrix::FromRows({{4, 2}, {2, 10}});
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(l->at(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l->at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l->at(1, 1), 3.0, 1e-12);
  EXPECT_NEAR(l->at(0, 1), 0.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // indefinite
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(CholeskyTest, SolvesLinearSystem) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 10}});
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  // Solve A x = b with b = {8, 26}; exact solution x = {1.5, 2.3}.
  std::vector<double> x = BackwardSolve(*l, ForwardSolve(*l, {8, 26}));
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 8, 1e-10);
  EXPECT_NEAR(2 * x[0] + 10 * x[1], 26, 1e-10);
}

TEST(GpTest, RejectsBadInput) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({1, 2}, {1}).ok());
}

TEST(GpTest, InterpolatesTrainingPoints) {
  GaussianProcess gp;
  std::vector<double> x{1, 5, 10, 20};
  std::vector<double> y{100, 480, 900, 1500};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(gp.Mean(x[i]), y[i], 30);  // small noise term allows slack
    EXPECT_LT(gp.StdDev(x[i]), 0.2 * std::abs(y[i]) + 50);
  }
}

TEST(GpTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit({5, 6, 7}, {50, 60, 70}).ok());
  EXPECT_GT(gp.StdDev(30), gp.StdDev(6));
}

TEST(GpTest, LcbBelowMean) {
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit({1, 10, 20}, {10, 100, 180}).ok());
  for (double x : {1.0, 5.0, 15.0, 25.0}) {
    EXPECT_LE(gp.Lcb(x, 3.0), gp.Mean(x) + 1e-9);
    EXPECT_LE(gp.Lcb(x, 3.0), gp.Lcb(x, 1.0) + 1e-9);  // more conservative
  }
}

TEST(GpTest, SinglePointPosterior) {
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit({4}, {40}).ok());
  EXPECT_NEAR(gp.Mean(4), 40, 1.0);
  EXPECT_GE(gp.StdDev(20), 0.0);
}

TEST(GpTest, MonotoneDataGivesMonotoneInterpolation) {
  // Processing-ability curves are increasing; the GP mean should roughly
  // follow between training points.
  GaussianProcess gp;
  std::vector<double> x, y;
  for (int p = 1; p <= 20; p += 2) {
    x.push_back(p);
    y.push_back(1000.0 * p / (1 + 0.02 * (p - 1)));
  }
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (int p = 2; p <= 18; p += 2) {
    EXPECT_GT(gp.Mean(p + 1), gp.Mean(p - 1));
  }
}

}  // namespace
}  // namespace streamtune::ml
