// End-to-end integration: full pipeline on both engines, all four tuners,
// across a rate schedule — a miniature of the paper's evaluation loop.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/conttune.h"
#include "baselines/ds2.h"
#include "baselines/zerotune.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "sim/engine.h"
#include "timelysim/timely_simulator.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"
#include "workloads/rate_schedule.h"

namespace streamtune {
namespace {

sim::FlinkEngine FlinkFor(const JobGraph& job) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  return sim::FlinkEngine(job, model, sim::SimConfig{});
}

TEST(IntegrationTest, FullPipelineOnFlinkSchedule) {
  // Corpus + pre-training.
  std::vector<JobGraph> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  core::HistoryOptions hist;
  hist.samples_per_job = 12;
  auto corpus = core::CollectHistory(jobs, hist);
  core::PretrainOptions pre;
  pre.use_clustering = false;
  pre.epochs = 12;
  auto bundle_res = core::Pretrainer(pre).Run(std::move(corpus));
  ASSERT_TRUE(bundle_res.ok());
  auto bundle =
      std::make_shared<core::PretrainedBundle>(std::move(*bundle_res));

  // Run StreamTune across a shortened schedule on an unseen variant.
  JobGraph target = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 6);
  sim::FlinkEngine engine = FlinkFor(target);
  std::vector<int> ones(target.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());
  core::StreamTuneTuner tuner(bundle);

  auto schedule = workloads::RateSequence(1);
  int post_tuning_backpressure = 0;
  for (size_t i = 0; i < 10; ++i) {
    engine.ScaleAllSources(schedule[i]);
    auto outcome = tuner.Tune(&engine);
    ASSERT_TRUE(outcome.ok()) << "step " << i;
    auto m = engine.Measure();
    ASSERT_TRUE(m.ok());
    if (m->severe_backpressure) ++post_tuning_backpressure;
  }
  // The tuned deployment must be clean after (almost) every change.
  EXPECT_LE(post_tuning_backpressure, 1);
}

TEST(IntegrationTest, AllTunersCoexistOnSameWorkload) {
  JobGraph job = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                            workloads::Engine::kFlink);
  // Minimal Nexmark corpus for the learned methods.
  std::vector<JobGraph> corpus_jobs;
  for (auto q : workloads::AllNexmarkQueries()) {
    corpus_jobs.push_back(
        workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  core::HistoryOptions hist;
  hist.samples_per_job = 10;
  auto corpus = core::CollectHistory(corpus_jobs, hist);

  core::PretrainOptions pre;
  pre.use_clustering = false;
  pre.epochs = 12;
  auto bundle_res = core::Pretrainer(pre).Run(corpus);
  ASSERT_TRUE(bundle_res.ok());
  auto bundle =
      std::make_shared<core::PretrainedBundle>(std::move(*bundle_res));

  std::vector<baselines::ZeroTuneExample> zt_examples;
  for (auto& r : corpus) {
    baselines::ZeroTuneExample ex;
    ex.graph = r.graph;
    ex.parallelism = r.parallelism;
    ex.cost = r.job_cost;
    zt_examples.push_back(std::move(ex));
  }
  baselines::ZeroTuneOptions zt_opts;
  zt_opts.epochs = 10;
  auto zerotune = std::make_unique<baselines::ZeroTuneTuner>(zt_opts);
  ASSERT_TRUE(zerotune->Train(zt_examples).ok());

  std::vector<std::unique_ptr<baselines::Tuner>> tuners;
  tuners.push_back(std::make_unique<baselines::Ds2Tuner>());
  tuners.push_back(std::make_unique<baselines::ContTuneTuner>());
  tuners.push_back(std::move(zerotune));
  tuners.push_back(std::make_unique<core::StreamTuneTuner>(bundle));

  for (auto& tuner : tuners) {
    sim::FlinkEngine engine = FlinkFor(job);
    std::vector<int> ones(job.num_operators(), 1);
    ASSERT_TRUE(engine.Deploy(ones).ok());
    engine.ScaleAllSources(10.0);
    auto outcome = tuner->Tune(&engine);
    ASSERT_TRUE(outcome.ok()) << tuner->name();
    EXPECT_GT(outcome->total_parallelism, 0) << tuner->name();
    // The paper's Table III guarantee: StreamTune and ZeroTune never end
    // with sustained backpressure. DS2/ContTune may stall on a mildly
    // saturated configuration (their useful-time estimates are noisy).
    if (tuner->name() == "StreamTune" || tuner->name() == "ZeroTune") {
      EXPECT_FALSE(outcome->ended_with_backpressure) << tuner->name();
    }
    auto m = engine.Measure();
    ASSERT_TRUE(m.ok());
    EXPECT_FALSE(m->severe_backpressure) << tuner->name();
  }
}

TEST(IntegrationTest, StreamTuneRunsOnTimelyEngine) {
  JobGraph job = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                            workloads::Engine::kTimely);
  // Timely-specific corpus (same engine physics as the tuning target).
  std::vector<JobGraph> corpus_jobs;
  for (auto q : {workloads::NexmarkQuery::kQ3, workloads::NexmarkQuery::kQ5,
                 workloads::NexmarkQuery::kQ8}) {
    corpus_jobs.push_back(
        workloads::BuildNexmarkJob(q, workloads::Engine::kTimely));
  }
  auto timely_factory = [](const JobGraph& g, uint64_t seed) {
    sim::PerfModel model(g, workloads::CostConfigFor(g));
    timelysim::TimelyConfig cfg;
    cfg.noise_seed = seed;
    return std::make_unique<timelysim::TimelySimulator>(g, model, cfg);
  };
  core::HistoryOptions hist;
  hist.samples_per_job = 15;
  hist.max_parallelism = 10;
  auto corpus = core::CollectHistory(corpus_jobs, hist, timely_factory);
  core::PretrainOptions pre;
  pre.use_clustering = false;
  pre.epochs = 12;
  auto bundle_res = core::Pretrainer(pre).Run(std::move(corpus));
  ASSERT_TRUE(bundle_res.ok());
  auto bundle =
      std::make_shared<core::PretrainedBundle>(std::move(*bundle_res));

  sim::PerfModel model(job, workloads::CostConfigFor(job));
  timelysim::TimelySimulator engine(job, model, timelysim::TimelyConfig{});
  std::vector<int> ones(job.num_operators(), 1);
  ASSERT_TRUE(engine.Deploy(ones).ok());
  engine.ScaleAllSources(10.0);
  core::StreamTuneTuner tuner(bundle);
  auto outcome = tuner.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  for (int p : outcome->final_parallelism) EXPECT_LE(p, 10);
  auto m = engine.Measure();
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->job_backpressure);
}

}  // namespace
}  // namespace streamtune
