#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/nn_classifier.h"

namespace streamtune::ml {
namespace {

std::vector<LabeledSample> ThresholdDataset(int n, Rng* rng) {
  std::vector<LabeledSample> data;
  for (int i = 0; i < n; ++i) {
    double knob = rng->Uniform();
    double threshold = 10 + 40 * knob;
    LabeledSample s;
    s.embedding = {knob, rng->Uniform(), rng->Uniform(), rng->Uniform()};
    s.parallelism = rng->UniformInt(1, 60);
    s.label = s.parallelism < threshold ? 1 : 0;
    data.push_back(std::move(s));
  }
  return data;
}

TEST(NnClassifierTest, RejectsBadInput) {
  NnClassifier nn(4);
  EXPECT_FALSE(nn.Fit({}).ok());
  LabeledSample bad;
  bad.embedding = {1.0};
  EXPECT_FALSE(nn.Fit({bad}).ok());
}

TEST(NnClassifierTest, NotMonotonicByContract) {
  NnClassifier nn(4);
  EXPECT_FALSE(nn.is_monotonic());
  EXPECT_EQ(nn.name(), "NN");
}

TEST(NnClassifierTest, LearnsThresholdTask) {
  Rng rng(42);
  auto data = ThresholdDataset(400, &rng);
  NnClassifier nn(4);
  ASSERT_TRUE(nn.Fit(data).ok());
  auto test = ThresholdDataset(200, &rng);
  int correct = 0;
  for (const auto& s : test) {
    if (nn.PredictBottleneck(s.embedding, s.parallelism) == (s.label == 1)) {
      ++correct;
    }
  }
  EXPECT_GT(correct, 150) << "accuracy " << correct / 200.0;
}

TEST(NnClassifierTest, ProbabilitiesInRange) {
  Rng rng(7);
  NnClassifier nn(4);
  ASSERT_TRUE(nn.Fit(ThresholdDataset(100, &rng)).ok());
  for (int i = 0; i < 20; ++i) {
    std::vector<double> h{rng.Uniform(), rng.Uniform(), rng.Uniform(),
                          rng.Uniform()};
    double p = nn.PredictProbability(h, rng.UniformInt(1, 100));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(NnClassifierTest, RefitIsDeterministicFreshRetrain) {
  Rng rng(9);
  auto data = ThresholdDataset(150, &rng);
  NnClassifier a(4), b(4);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  std::vector<double> h{0.3, 0.6, 0.2, 0.8};
  EXPECT_DOUBLE_EQ(a.PredictProbability(h, 10), b.PredictProbability(h, 10));
}

}  // namespace
}  // namespace streamtune::ml
