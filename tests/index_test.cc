#include "index/nearest_center_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <string>
#include <thread>

#include "graph/ged.h"
#include "graph/ged_cache.h"
#include "graph/ged_kmeans.h"
#include "index/bitsliced_index.h"
#include "index/wl_signature.h"
#include "workloads/pqp.h"
#include "workloads/random_dag.h"

namespace streamtune::index {
namespace {

JobGraph Pqp(workloads::PqpTemplate t, int variant) {
  return workloads::BuildPqpJob(t, variant);
}

// Compact DAG shape for the high-count property tests: the exactness
// contract is shape-independent, and small graphs keep the *linear-scan
// reference side* (unpruned A* GED per pair) affordable at 1k x 32 scale.
workloads::RandomDagConfig CompactShape() {
  workloads::RandomDagConfig cfg;
  cfg.max_sources = 2;
  cfg.max_chain_length = 2;
  return cfg;
}

// The same wiring inserted in two different operator orders.
JobGraph DiamondInOrder(bool reversed) {
  JobGraph g("diamond");
  OperatorSpec src;
  src.name = "src";
  src.type = OperatorType::kSource;
  src.source_rate = 1000;
  OperatorSpec map;
  map.name = "map";
  map.type = OperatorType::kMap;
  OperatorSpec filter;
  filter.name = "filter";
  filter.type = OperatorType::kFilter;
  OperatorSpec sink;
  sink.name = "sink";
  sink.type = OperatorType::kSink;
  if (!reversed) {
    int s = g.AddOperator(src), m = g.AddOperator(map),
        f = g.AddOperator(filter), k = g.AddOperator(sink);
    EXPECT_TRUE(g.AddEdge(s, m).ok());
    EXPECT_TRUE(g.AddEdge(s, f).ok());
    EXPECT_TRUE(g.AddEdge(m, k).ok());
    EXPECT_TRUE(g.AddEdge(f, k).ok());
  } else {
    int k = g.AddOperator(sink), f = g.AddOperator(filter),
        m = g.AddOperator(map), s = g.AddOperator(src);
    EXPECT_TRUE(g.AddEdge(s, m).ok());
    EXPECT_TRUE(g.AddEdge(s, f).ok());
    EXPECT_TRUE(g.AddEdge(m, k).ok());
    EXPECT_TRUE(g.AddEdge(f, k).ok());
  }
  return g;
}

TEST(WlSignatureTest, IsomorphicGraphsShareSignatureAndFeatures) {
  JobGraph a = DiamondInOrder(false);
  JobGraph b = DiamondInOrder(true);
  EXPECT_EQ(ComputeWlSignature(a), ComputeWlSignature(b));
  EXPECT_EQ(ComputeGraphFeatures(a), ComputeGraphFeatures(b));
  EXPECT_EQ(a.CanonicalHash(), b.CanonicalHash());
}

TEST(WlSignatureTest, DifferentStructuresDiffer) {
  JobGraph a = Pqp(workloads::PqpTemplate::kLinear, 0);
  JobGraph b = Pqp(workloads::PqpTemplate::kThreeWayJoin, 0);
  EXPECT_FALSE(ComputeWlSignature(a) == ComputeWlSignature(b));
}

TEST(WlSignatureTest, FeatureLowerBoundEqualsLabelSetLowerBound) {
  auto graphs = workloads::GenerateRandomDags(60, /*seed=*/271);
  for (size_t i = 0; i + 1 < graphs.size(); i += 2) {
    const JobGraph& a = graphs[i];
    const JobGraph& b = graphs[i + 1];
    EXPECT_DOUBLE_EQ(
        FeatureLowerBound(ComputeGraphFeatures(a), ComputeGraphFeatures(b)),
        graph::LabelSetLowerBound(a, b))
        << "pair " << i;
  }
}

TEST(WlSignatureTest, LowerBoundIsSoundOnRandomPairs) {
  auto graphs = workloads::GenerateRandomDags(40, /*seed=*/99);
  for (size_t i = 0; i + 1 < graphs.size(); i += 2) {
    const JobGraph& a = graphs[i];
    const JobGraph& b = graphs[i + 1];
    const double lb =
        FeatureLowerBound(ComputeGraphFeatures(a), ComputeGraphFeatures(b));
    const graph::GedResult r = graph::ComputeGed(a, b);
    ASSERT_TRUE(r.exact);
    EXPECT_LE(lb, r.distance + 1e-9);
  }
}

TEST(BitslicedIndexTest, SignatureRoundTripAcrossGroupBoundary) {
  // > 256 columns so the second slice group is exercised.
  auto graphs = workloads::GenerateRandomDags(300, /*seed=*/7);
  BitslicedIndex idx;
  for (const JobGraph& g : graphs) {
    idx.Insert(ComputeWlSignature(g), ComputeGraphFeatures(g));
  }
  ASSERT_EQ(idx.size(), 300);
  for (int i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(idx.signature(i), ComputeWlSignature(graphs[i])) << i;
    EXPECT_EQ(idx.features(i), ComputeGraphFeatures(graphs[i])) << i;
  }
}

TEST(BitslicedIndexTest, ScoresMatchDirectOverlap) {
  auto graphs = workloads::GenerateRandomDags(300, /*seed=*/11);
  BitslicedIndex idx;
  for (const JobGraph& g : graphs) {
    idx.Insert(ComputeWlSignature(g), ComputeGraphFeatures(g));
  }
  const WlSignature query =
      ComputeWlSignature(Pqp(workloads::PqpTemplate::kThreeWayJoin, 3));
  std::vector<uint16_t> scores;
  idx.Scores(query, &scores);
  ASSERT_EQ(scores.size(), graphs.size());
  for (size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(scores[i],
              SignatureOverlap(query, ComputeWlSignature(graphs[i])))
        << i;
  }
}

// Pins the scalar core against the active dispatch (AVX2 where available):
// same fixture shape as MatrixSimdTest's forced-scalar tests.
class IndexDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("STREAMTUNE_FORCE_SCALAR");
    had_env_ = prev != nullptr;
    if (had_env_) saved_ = prev;
  }
  void TearDown() override {
    if (had_env_) {
      setenv("STREAMTUNE_FORCE_SCALAR", saved_.c_str(), 1);
    } else {
      unsetenv("STREAMTUNE_FORCE_SCALAR");
    }
    ReinitIndexDispatchForTest();
  }
  bool had_env_ = false;
  std::string saved_;
};

TEST_F(IndexDispatchTest, ScalarAndActiveCoresAreBitIdentical) {
  auto graphs = workloads::GenerateRandomDags(513, /*seed=*/23);
  BitslicedIndex idx;
  for (const JobGraph& g : graphs) {
    idx.Insert(ComputeWlSignature(g), ComputeGraphFeatures(g));
  }
  const WlSignature query = ComputeWlSignature(graphs[100]);

  unsetenv("STREAMTUNE_FORCE_SCALAR");
  ReinitIndexDispatchForTest();
  std::vector<uint16_t> active;
  idx.Scores(query, &active);

  setenv("STREAMTUNE_FORCE_SCALAR", "1", 1);
  ReinitIndexDispatchForTest();
  EXPECT_STREQ(ActiveIndexDispatch(), "scalar");
  std::vector<uint16_t> scalar;
  idx.Scores(query, &scalar);

  EXPECT_EQ(active, scalar);
}

// ---- The exactness contract ------------------------------------------------

// Two-stage nearest == linear scan, bit for bit: same center index, same
// distance, over 1k random graphs x 32 random centers (seeded).
TEST(NearestCenterIndexTest, TwoStageMatchesLinearScanOn1kx32) {
  const auto centers =
      workloads::GenerateRandomDags(32, /*seed=*/4242, CompactShape());
  const auto queries =
      workloads::GenerateRandomDags(1000, /*seed=*/1717, CompactShape());

  NearestCenterIndex idx;
  for (const JobGraph& c : centers) idx.Insert(c);
  const auto at = [&centers](int i) -> const JobGraph& {
    return centers[i];
  };

  // Independent caches per path: GedCache's order-independent answer
  // policy is exactly what makes results agree no matter which path
  // warmed which entries.
  graph::GedCache linear_cache;
  graph::GedCache indexed_cache;

  long long evaluated = 0;
  for (const JobGraph& q : queries) {
    const std::vector<double> dist =
        graph::DistancesToCenters(q, centers, &linear_cache);
    const int linear_idx = static_cast<int>(
        std::min_element(dist.begin(), dist.end()) - dist.begin());
    const double linear_dist = dist[linear_idx];

    const NearestCenterIndex::NearestResult two_stage =
        idx.Nearest(q, at, &indexed_cache);
    ASSERT_EQ(two_stage.index, linear_idx) << q.name();
    ASSERT_DOUBLE_EQ(two_stage.distance, linear_dist) << q.name();
    evaluated += two_stage.evaluated;
  }

  const NearestCenterIndex::QueryStats stats = idx.query_stats();
  EXPECT_EQ(stats.queries, 1000);
  EXPECT_EQ(stats.candidates, 32 * 1000);
  EXPECT_EQ(stats.evaluated, evaluated);
  // The index must actually prune; random 32-center corpora leave plenty
  // of lower-bound slack.
  EXPECT_LT(stats.evaluated, stats.candidates);
}

TEST(NearestCenterIndexTest, CacheLessPathMatchesToo) {
  const auto centers =
      workloads::GenerateRandomDags(16, /*seed=*/5, CompactShape());
  const auto queries =
      workloads::GenerateRandomDags(50, /*seed=*/6, CompactShape());
  NearestCenterIndex idx;
  for (const JobGraph& c : centers) idx.Insert(c);
  const auto at = [&centers](int i) -> const JobGraph& {
    return centers[i];
  };
  for (const JobGraph& q : queries) {
    const int linear = graph::NearestCenter(q, centers);
    const auto r = idx.Nearest(q, at);
    EXPECT_EQ(r.index, linear);
  }
}

// Same equality at the default (larger) DAG shape, smaller count: catches
// anything the compact shape can't reach (deeper WL refinement, wider
// feature histograms).
TEST(NearestCenterIndexTest, TwoStageMatchesLinearScanAtDefaultShape) {
  const auto centers = workloads::GenerateRandomDags(8, /*seed=*/8080);
  const auto queries = workloads::GenerateRandomDags(10, /*seed=*/8081);
  NearestCenterIndex idx;
  for (const JobGraph& c : centers) idx.Insert(c);
  const auto at = [&centers](int i) -> const JobGraph& {
    return centers[i];
  };
  graph::GedCache linear_cache;
  graph::GedCache indexed_cache;
  for (const JobGraph& q : queries) {
    const std::vector<double> dist =
        graph::DistancesToCenters(q, centers, &linear_cache);
    const int linear_idx = static_cast<int>(
        std::min_element(dist.begin(), dist.end()) - dist.begin());
    const auto r = idx.Nearest(q, at, &indexed_cache);
    ASSERT_EQ(r.index, linear_idx) << q.name();
    ASSERT_DOUBLE_EQ(r.distance, dist[linear_idx]) << q.name();
  }
}

TEST(NearestCenterIndexTest, FindsExactDuplicateAtDistanceZero) {
  const auto centers = workloads::GenerateRandomDags(8, /*seed=*/31);
  NearestCenterIndex idx;
  for (const JobGraph& c : centers) idx.Insert(c);
  const auto at = [&centers](int i) -> const JobGraph& {
    return centers[i];
  };
  for (int i = 0; i < static_cast<int>(centers.size()); ++i) {
    const auto r = idx.Nearest(centers[i], at);
    EXPECT_EQ(r.index, i);
    EXPECT_DOUBLE_EQ(r.distance, 0.0);
  }
}

TEST(NearestCenterIndexTest, CandidatesWithinIsASupersetOfTrueNeighbors) {
  const auto corpus = workloads::GenerateRandomDags(64, /*seed=*/77);
  NearestCenterIndex idx;
  for (const JobGraph& g : corpus) idx.Insert(g);
  const JobGraph query = workloads::GenerateRandomDags(1, /*seed=*/78)[0];

  const double tau = 6.0;
  const std::vector<int> cands = idx.CandidatesWithin(query, tau);
  for (int i = 0; i < static_cast<int>(corpus.size()); ++i) {
    const graph::GedResult r = graph::ComputeGed(query, corpus[i]);
    if (r.exact && r.distance <= tau + 1e-9) {
      EXPECT_NE(std::find(cands.begin(), cands.end(), i), cands.end())
          << "true neighbor " << i << " missing from the prefilter";
    }
  }
}

TEST(NearestCenterIndexTest, ConcurrentQueriesAgreeWithSerialAnswers) {
  const auto centers =
      workloads::GenerateRandomDags(24, /*seed=*/303, CompactShape());
  const auto queries =
      workloads::GenerateRandomDags(48, /*seed=*/304, CompactShape());
  NearestCenterIndex idx;
  for (const JobGraph& c : centers) idx.Insert(c);
  // The shared-graph contract: adjacency warmed before publication.
  for (const JobGraph& c : centers) c.WarmAdjacency();
  for (const JobGraph& q : queries) q.WarmAdjacency();
  const auto at = [&centers](int i) -> const JobGraph& {
    return centers[i];
  };

  std::vector<int> serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    serial[i] = idx.Nearest(queries[i], at).index;
  }

  constexpr int kThreads = 8;
  std::vector<std::array<int, 48>> got(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < queries.size(); ++i) {
        got[t][i] = idx.Nearest(queries[i], at).index;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[t][i], serial[i]) << "thread " << t << " query " << i;
    }
  }
  const NearestCenterIndex::QueryStats stats = idx.query_stats();
  EXPECT_EQ(stats.queries,
            static_cast<long long>((kThreads + 1) * queries.size()));
}

TEST(NearestCenterIndexTest, EmptyIndexReturnsNoResult) {
  NearestCenterIndex idx;
  const JobGraph q = Pqp(workloads::PqpTemplate::kLinear, 0);
  const auto r = idx.Nearest(q, [&q](int) -> const JobGraph& { return q; });
  EXPECT_EQ(r.index, -1);
  EXPECT_TRUE(std::isinf(r.distance));
  EXPECT_EQ(r.evaluated, 0);
}

TEST(NearestCenterIndexTest, CopiesKeepColumnsButStartWithColdStats) {
  const auto centers = workloads::GenerateRandomDags(8, /*seed=*/12);
  NearestCenterIndex idx;
  for (const JobGraph& c : centers) idx.Insert(c);
  const auto at = [&centers](int i) -> const JobGraph& {
    return centers[i];
  };
  (void)idx.Nearest(centers[3], at);
  ASSERT_EQ(idx.query_stats().queries, 1);

  NearestCenterIndex copy = idx;
  EXPECT_EQ(copy.size(), idx.size());
  EXPECT_EQ(copy.query_stats().queries, 0);
  for (int i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(copy.slices().signature(i), idx.slices().signature(i));
  }
  // The copy still answers correctly.
  EXPECT_EQ(copy.Nearest(centers[5], at).index, 5);
}

}  // namespace
}  // namespace streamtune::index
