#include <gtest/gtest.h>

#include "sim/flow_solver.h"

namespace streamtune::sim {
namespace {

OperatorSpec Src(const char* name, double rate) {
  OperatorSpec s;
  s.name = name;
  s.type = OperatorType::kSource;
  s.source_rate = rate;
  return s;
}

OperatorSpec Op(const char* name, OperatorType t) {
  OperatorSpec s;
  s.name = name;
  s.type = t;
  return s;
}

// src -> map -> sink
JobGraph Chain() {
  JobGraph g("chain");
  int a = g.AddOperator(Src("src", 1000));
  int b = g.AddOperator(Op("map", OperatorType::kMap));
  int c = g.AddOperator(Op("sink", OperatorType::kSink));
  EXPECT_TRUE(g.AddEdge(a, b).ok());
  EXPECT_TRUE(g.AddEdge(b, c).ok());
  return g;
}

TEST(FlowSolverTest, UnconstrainedChainPassesRatesThrough) {
  JobGraph g = Chain();
  FlowResult r = SolveFlow(g, {1e6, 1e6, 1e6}, {1.0, 0.5, 0.0},
                           {1000, 0, 0});
  EXPECT_DOUBLE_EQ(r.lambda, 1.0);
  EXPECT_DOUBLE_EQ(r.desired_in[0], 1000);
  EXPECT_DOUBLE_EQ(r.desired_in[1], 1000);
  EXPECT_DOUBLE_EQ(r.desired_in[2], 500);  // selectivity 0.5
  EXPECT_FALSE(r.AnyBackpressure());
  for (int v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(r.achieved_in[v], r.desired_in[v]);
    EXPECT_FALSE(r.blocked[v]);
  }
}

TEST(FlowSolverTest, BottleneckThrottlesSources) {
  JobGraph g = Chain();
  // Map can only handle 500 of the 1000 offered.
  FlowResult r = SolveFlow(g, {1e6, 500, 1e6}, {1.0, 1.0, 0.0},
                           {1000, 0, 0});
  EXPECT_DOUBLE_EQ(r.lambda, 0.5);
  EXPECT_DOUBLE_EQ(r.achieved_in[1], 500);
  EXPECT_TRUE(r.saturated[1]);
  EXPECT_TRUE(r.blocked[0]);   // source blocked by the map
  EXPECT_FALSE(r.blocked[1]);  // the bottleneck itself is not blocked
  EXPECT_FALSE(r.blocked[2]);  // downstream of the bottleneck
  EXPECT_TRUE(r.AnyBackpressure());
}

TEST(FlowSolverTest, CascadingBlockPropagatesUpstream) {
  // src -> m1 -> m2 -> sink, bottleneck at sink.
  JobGraph g("deep");
  int s = g.AddOperator(Src("src", 1000));
  int m1 = g.AddOperator(Op("m1", OperatorType::kMap));
  int m2 = g.AddOperator(Op("m2", OperatorType::kMap));
  int k = g.AddOperator(Op("sink", OperatorType::kSink));
  ASSERT_TRUE(g.AddEdge(s, m1).ok());
  ASSERT_TRUE(g.AddEdge(m1, m2).ok());
  ASSERT_TRUE(g.AddEdge(m2, k).ok());
  FlowResult r = SolveFlow(g, {1e6, 1e6, 1e6, 100}, {1, 1, 1, 0},
                           {1000, 0, 0, 0});
  EXPECT_TRUE(r.saturated[k]);
  EXPECT_TRUE(r.blocked[s]);
  EXPECT_TRUE(r.blocked[m1]);
  EXPECT_TRUE(r.blocked[m2]);
  EXPECT_NEAR(r.lambda, 0.1, 1e-12);
}

TEST(FlowSolverTest, MultiSourceJoinSumsInputs) {
  JobGraph g("join");
  int s1 = g.AddOperator(Src("s1", 300));
  int s2 = g.AddOperator(Src("s2", 700));
  int j = g.AddOperator(Op("join", OperatorType::kJoin));
  int k = g.AddOperator(Op("sink", OperatorType::kSink));
  ASSERT_TRUE(g.AddEdge(s1, j).ok());
  ASSERT_TRUE(g.AddEdge(s2, j).ok());
  ASSERT_TRUE(g.AddEdge(j, k).ok());
  FlowResult r = SolveFlow(g, {1e6, 1e6, 1e6, 1e6}, {1, 1, 0.8, 0},
                           {300, 700, 0, 0});
  EXPECT_DOUBLE_EQ(r.desired_in[j], 1000);
  EXPECT_DOUBLE_EQ(r.desired_in[k], 800);
}

TEST(FlowSolverTest, SaturatedSourceCountsAsBackpressure) {
  JobGraph g = Chain();
  FlowResult r = SolveFlow(g, {400, 1e6, 1e6}, {1, 1, 0}, {1000, 0, 0});
  EXPECT_TRUE(r.saturated[0]);
  EXPECT_NEAR(r.lambda, 0.4, 1e-12);
  EXPECT_TRUE(r.AnyBackpressure());
  // Nothing upstream of the source, so nothing is blocked.
  EXPECT_FALSE(r.blocked[0]);
}

TEST(FlowSolverTest, BusyFractionsMatchAchievedOverCapacity) {
  JobGraph g = Chain();
  FlowResult r = SolveFlow(g, {2000, 4000, 8000}, {1, 1, 0}, {1000, 0, 0});
  EXPECT_DOUBLE_EQ(r.busy[0], 0.5);
  EXPECT_DOUBLE_EQ(r.busy[1], 0.25);
  EXPECT_DOUBLE_EQ(r.busy[2], 0.125);
}

TEST(FlowSolverTest, ZeroRateProducesZeroFlowsAndNoBackpressure) {
  JobGraph g = Chain();
  FlowResult r = SolveFlow(g, {100, 100, 100}, {1, 1, 0}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(r.lambda, 1.0);
  EXPECT_FALSE(r.AnyBackpressure());
  for (int v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(r.achieved_in[v], 0.0);
}

TEST(FlowSolverTest, MostOverloadedOperatorSetsLambda) {
  JobGraph g("deep");
  int s = g.AddOperator(Src("src", 1000));
  int m1 = g.AddOperator(Op("m1", OperatorType::kMap));
  int m2 = g.AddOperator(Op("m2", OperatorType::kMap));
  ASSERT_TRUE(g.AddEdge(s, m1).ok());
  ASSERT_TRUE(g.AddEdge(m1, m2).ok());
  // m1 at 50% deficit, m2 at 75% deficit -> lambda from m2.
  FlowResult r = SolveFlow(g, {1e6, 500, 250}, {1, 1, 0}, {1000, 0, 0});
  EXPECT_NEAR(r.lambda, 0.25, 1e-12);
  EXPECT_TRUE(r.saturated[m2]);
  // m1 runs at half capacity after throttling; not saturated at runtime.
  EXPECT_FALSE(r.saturated[m1]);
  EXPECT_TRUE(r.blocked[m1]);
}

}  // namespace
}  // namespace streamtune::sim
