// Metric validation, frozen detection, and median-of-k replacement.

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <limits>

#include "sim/metrics_sanitizer.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"

namespace streamtune::sim {
namespace {

JobMetrics PlausibleMetrics(int n_ops = 3) {
  JobMetrics m;
  m.lambda = 1.0;
  m.total_parallelism = n_ops;
  m.used_cores = 0.5 * n_ops;
  m.ops.resize(n_ops);
  for (int v = 0; v < n_ops; ++v) {
    OperatorMetrics& om = m.ops[v];
    om.busy_frac = 0.5;
    om.idle_frac = 0.5;
    om.backpressured_frac = 0.0;
    om.cpu_load = 0.5;
    om.input_rate = 100.0 + v;
    om.output_rate = 90.0 + v;
    om.desired_input_rate = 100.0 + v;
    om.useful_time_frac_observed = 0.5;
  }
  return m;
}

TEST(ValidateTest, AcceptsPlausibleMetrics) {
  EXPECT_TRUE(ValidateJobMetrics(PlausibleMetrics()).ok());
  EXPECT_TRUE(PlausibleMetrics().Validate().ok());
}

TEST(ValidateTest, RejectsNaN) {
  JobMetrics m = PlausibleMetrics();
  m.ops[1].busy_frac = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(m.Validate().ok());
  m = PlausibleMetrics();
  m.lambda = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(m.Validate().ok());
}

TEST(ValidateTest, RejectsNegativeRates) {
  JobMetrics m = PlausibleMetrics();
  m.ops[0].input_rate = -5.0;
  EXPECT_FALSE(m.Validate().ok());
  m = PlausibleMetrics();
  m.ops[2].output_rate = -1.0;
  EXPECT_FALSE(m.Validate().ok());
}

TEST(ValidateTest, RejectsOutOfRangeFractions) {
  JobMetrics m = PlausibleMetrics();
  m.ops[0].busy_frac = 1.5;
  EXPECT_FALSE(m.Validate().ok());
  m = PlausibleMetrics();
  m.ops[1].backpressured_frac = -0.2;
  EXPECT_FALSE(m.Validate().ok());
  m = PlausibleMetrics();
  m.lambda = 0.0;  // lambda lives in (0, 1]
  EXPECT_FALSE(m.Validate().ok());
  m = PlausibleMetrics();
  m.lambda = 1.2;
  EXPECT_FALSE(m.Validate().ok());
}

TEST(SanitizerTest, FlagsFrozenSamples) {
  MetricsSanitizer sanitizer;
  JobMetrics m = PlausibleMetrics();
  EXPECT_EQ(MetricsSanitizer::Verdict::kOk, sanitizer.Check(m));
  sanitizer.Accept(m);
  // Bitwise-identical to the accepted baseline: frozen.
  EXPECT_EQ(MetricsSanitizer::Verdict::kFrozen, sanitizer.Check(m));
  EXPECT_EQ(1, sanitizer.stats().frozen);
  // Any field change unfreezes it.
  m.ops[0].busy_frac += 1e-9;
  EXPECT_EQ(MetricsSanitizer::Verdict::kOk, sanitizer.Check(m));
}

TEST(SanitizerTest, InvalidVerdictCarriesDetail) {
  MetricsSanitizer sanitizer;
  JobMetrics m = PlausibleMetrics();
  m.ops[0].input_rate = -1.0;
  Status detail;
  EXPECT_EQ(MetricsSanitizer::Verdict::kInvalid, sanitizer.Check(m, &detail));
  EXPECT_FALSE(detail.ok());
  EXPECT_EQ(1, sanitizer.stats().rejected);
}

TEST(MedianTest, ComponentWiseMedian) {
  JobMetrics a = PlausibleMetrics(1), b = PlausibleMetrics(1),
             c = PlausibleMetrics(1);
  a.ops[0].busy_frac = 0.2;
  b.ops[0].busy_frac = 0.9;
  c.ops[0].busy_frac = 0.4;
  a.lambda = 0.8;
  b.lambda = 1.0;
  c.lambda = 0.9;
  a.job_backpressure = true;
  b.job_backpressure = true;
  c.job_backpressure = false;
  JobMetrics med = MedianOfSamples({a, b, c});
  EXPECT_DOUBLE_EQ(0.4, med.ops[0].busy_frac);
  EXPECT_DOUBLE_EQ(0.9, med.lambda);
  EXPECT_TRUE(med.job_backpressure);  // 2-of-3 majority
}

/// Scripted engine: serves a fixed queue of Measure results.
class ScriptedEngine : public StreamEngine {
 public:
  explicit ScriptedEngine(JobGraph graph) : graph_(std::move(graph)) {
    parallelism_.assign(graph_.num_operators(), 1);
  }

  void Push(Result<JobMetrics> r) { script_.push_back(std::move(r)); }

  const JobGraph& graph() const override { return graph_; }
  int max_parallelism() const override { return 100; }
  Status Deploy(const std::vector<int>& p) override {
    if (!deploy_status_.ok()) {
      Status st = deploy_status_;
      if (--deploy_failures_left_ <= 0) deploy_status_ = Status::OK();
      return st;
    }
    parallelism_ = p;
    ++reconfigurations_;
    return Status::OK();
  }
  Result<JobMetrics> Measure() override {
    ++measure_calls_;
    if (script_.empty()) return PlausibleMetrics(graph_.num_operators());
    Result<JobMetrics> r = std::move(script_.front());
    script_.pop_front();
    return r;
  }
  const std::vector<int>& parallelism() const override {
    return parallelism_;
  }
  void ScaleAllSources(double) override {}
  std::vector<double> current_source_rates() const override {
    return std::vector<double>(graph_.num_operators(), 0.0);
  }
  int reconfiguration_count() const override { return reconfigurations_; }
  int deployment_count() const override { return reconfigurations_; }
  double virtual_minutes() const override { return virtual_minutes_; }
  void ResetCounters() override { reconfigurations_ = 0; }
  void AdvanceVirtualMinutes(double minutes) override {
    virtual_minutes_ += minutes;
  }
  std::vector<int> OracleParallelism() const override { return parallelism_; }

  void FailDeploys(int count, Status status) {
    deploy_failures_left_ = count;
    deploy_status_ = std::move(status);
  }

  int measure_calls() const { return measure_calls_; }

 private:
  JobGraph graph_;
  std::vector<int> parallelism_;
  std::deque<Result<JobMetrics>> script_;
  Status deploy_status_ = Status::OK();
  int deploy_failures_left_ = 0;
  int reconfigurations_ = 0;
  int measure_calls_ = 0;
  double virtual_minutes_ = 0;
};

JobGraph Q3() {
  return workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                    workloads::Engine::kFlink);
}

TEST(MeasureSanitizedTest, CleanSampleCostsExactlyOneCall) {
  ScriptedEngine engine(Q3());
  MetricsSanitizer sanitizer;
  auto r = MeasureSanitized(&engine, &sanitizer, RetryOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(1, engine.measure_calls());
  EXPECT_EQ(0, sanitizer.stats().rejected);
  EXPECT_EQ(0, sanitizer.stats().remeasures);
}

TEST(MeasureSanitizedTest, RetriesTransientDropoutsAndChargesClock) {
  ScriptedEngine engine(Q3());
  engine.Push(Status::Unavailable("dropped"));
  engine.Push(Status::Unavailable("dropped"));
  MetricsSanitizer sanitizer;
  RetryStats stats;
  auto r = MeasureSanitized(&engine, &sanitizer, RetryOptions{}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(3, engine.measure_calls());
  EXPECT_EQ(2, stats.retries);
  // Default backoff: 0.5 + 1.0 virtual minutes charged to the engine.
  EXPECT_DOUBLE_EQ(1.5, engine.virtual_minutes());
}

TEST(MeasureSanitizedTest, NonRetryableErrorPropagatesImmediately) {
  ScriptedEngine engine(Q3());
  engine.Push(Status::FailedPrecondition("job not deployed"));
  MetricsSanitizer sanitizer;
  auto r = MeasureSanitized(&engine, &sanitizer, RetryOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, r.status().code());
  EXPECT_EQ(1, engine.measure_calls());
}

TEST(MeasureSanitizedTest, CorruptedSampleReplacedByMedian) {
  const JobGraph g = Q3();
  const int n = g.num_operators();
  ScriptedEngine engine(g);
  JobMetrics bad = PlausibleMetrics(n);
  bad.ops[0].busy_frac = std::numeric_limits<double>::quiet_NaN();
  engine.Push(bad);
  JobMetrics s1 = PlausibleMetrics(n), s2 = PlausibleMetrics(n),
             s3 = PlausibleMetrics(n);
  s1.lambda = 0.7;
  s2.lambda = 0.9;
  s3.lambda = 0.8;
  engine.Push(s1);
  engine.Push(s2);
  engine.Push(s3);

  MetricsSanitizer sanitizer;
  auto r = MeasureSanitized(&engine, &sanitizer, RetryOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(0.8, r->lambda);  // median of the fresh samples
  EXPECT_TRUE(r->Validate().ok());
  EXPECT_EQ(1, sanitizer.stats().rejected);
  EXPECT_EQ(3, sanitizer.stats().remeasures);
}

TEST(MeasureSanitizedTest, AllSamplesCorruptedReturnsError) {
  const JobGraph g = Q3();
  const int n = g.num_operators();
  ScriptedEngine engine(g);
  for (int i = 0; i < 8; ++i) {
    JobMetrics bad = PlausibleMetrics(n);
    bad.ops[0].input_rate = -1.0;
    engine.Push(bad);
  }
  MetricsSanitizer sanitizer;
  auto r = MeasureSanitized(&engine, &sanitizer, RetryOptions{});
  EXPECT_FALSE(r.ok());
}

TEST(DeployWithRetryTest, RetriesTransientFailures) {
  ScriptedEngine engine(Q3());
  engine.FailDeploys(2, Status::Unavailable("injected"));
  RetryStats stats;
  std::vector<int> p(engine.graph().num_operators(), 2);
  Status st = DeployWithRetry(&engine, p, RetryOptions{}, &stats);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(2, stats.retries);
  EXPECT_EQ(p, engine.parallelism());
  EXPECT_EQ(1, engine.reconfiguration_count());
}

TEST(DeployWithRetryTest, GivesUpAfterBudget) {
  ScriptedEngine engine(Q3());
  engine.FailDeploys(100, Status::Unavailable("injected"));
  RetryOptions retry;
  retry.max_attempts = 3;
  std::vector<int> p(engine.graph().num_operators(), 2);
  Status st = DeployWithRetry(&engine, p, retry);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kUnavailable, st.code());
  EXPECT_EQ(0, engine.reconfiguration_count());
}

}  // namespace
}  // namespace streamtune::sim
