#include <gtest/gtest.h>

#include "baselines/conttune.h"
#include "baselines/ds2.h"
#include "baselines/zerotune.h"
#include "core/history.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

namespace streamtune::baselines {
namespace {

sim::FlinkEngine NoiselessEngine(const JobGraph& job) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  sim::SimConfig cfg;
  cfg.useful_time_noise = 0.0;
  return sim::FlinkEngine(job, model, cfg);
}

sim::FlinkEngine NoisyEngine(const JobGraph& job) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  return sim::FlinkEngine(job, model, sim::SimConfig{});
}

JobGraph Q3() {
  return workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                    workloads::Engine::kFlink);
}

void DeployOnes(sim::StreamEngine* engine) {
  std::vector<int> ones(engine->graph().num_operators(), 1);
  ASSERT_TRUE(engine->Deploy(ones).ok());
}

TEST(Ds2Test, ConvergesNearOracleWithoutNoise) {
  JobGraph job = Q3();
  sim::FlinkEngine engine = NoiselessEngine(job);
  DeployOnes(&engine);
  engine.ScaleAllSources(10.0);
  Ds2Tuner ds2;
  auto outcome = ds2.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  auto m = engine.Measure();
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->job_backpressure);
  int oracle_total = 0;
  for (int p : engine.OracleParallelism()) oracle_total += p;
  // Without measurement noise DS2 should land close to the oracle.
  EXPECT_LE(outcome->total_parallelism, oracle_total + 5);
  EXPECT_GE(outcome->total_parallelism, oracle_total - 2);
}

TEST(Ds2Test, ConvergesInFewSteps) {
  // "Three steps is all you need" — without noise DS2 needs only a couple
  // of reconfigurations even from an all-ones deployment.
  JobGraph job = Q3();
  sim::FlinkEngine engine = NoiselessEngine(job);
  DeployOnes(&engine);
  engine.ScaleAllSources(5.0);
  Ds2Tuner ds2;
  auto outcome = ds2.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome->reconfigurations, 4);
}

TEST(Ds2Test, ScalesDownAfterRateDrop) {
  JobGraph job = Q3();
  sim::FlinkEngine engine = NoiselessEngine(job);
  DeployOnes(&engine);
  engine.ScaleAllSources(10.0);
  Ds2Tuner ds2;
  ASSERT_TRUE(ds2.Tune(&engine).ok());
  int high_total = 0;
  for (int p : engine.parallelism()) high_total += p;
  engine.ScaleAllSources(1.0);
  auto outcome = ds2.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LT(outcome->total_parallelism, high_total);
}

TEST(Ds2Test, RecommendationKeepsIdleOperatorsUnchanged) {
  JobGraph job = Q3();
  sim::FlinkEngine engine = NoiselessEngine(job);
  std::vector<int> p(job.num_operators(), 3);
  ASSERT_TRUE(engine.Deploy(p).ok());
  for (int v = 0; v < job.num_operators(); ++v) {
    if (job.op(v).is_source()) {
      ASSERT_TRUE(engine.simulator().SetSourceRate(v, 0.0).ok());
    }
  }
  auto m = engine.Measure();
  ASSERT_TRUE(m.ok());
  Ds2Tuner ds2;
  EXPECT_EQ(ds2.Recommend(engine, *m), p);
}

TEST(ContTuneTest, EliminatesBackpressure) {
  JobGraph job = Q3();
  sim::FlinkEngine engine = NoisyEngine(job);
  DeployOnes(&engine);
  engine.ScaleAllSources(10.0);
  ContTuneTuner conttune;
  auto outcome = conttune.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  auto m = engine.Measure();
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->severe_backpressure);
}

TEST(ContTuneTest, AccumulatesHistoryAcrossProcesses) {
  JobGraph job = Q3();
  sim::FlinkEngine engine = NoisyEngine(job);
  DeployOnes(&engine);
  ContTuneTuner conttune;
  engine.ScaleAllSources(5.0);
  auto first = conttune.Tune(&engine);
  ASSERT_TRUE(first.ok());
  engine.ScaleAllSources(10.0);
  auto second = conttune.Tune(&engine);
  ASSERT_TRUE(second.ok());
  engine.ScaleAllSources(5.0);
  // Third process at a previously seen rate: the GP surrogate has data, so
  // the process should be short.
  auto third = conttune.Tune(&engine);
  ASSERT_TRUE(third.ok());
  EXPECT_LE(third->reconfigurations, first->reconfigurations + 2);
}

TEST(ContTuneTest, BigPhaseScalesUpUnderDeficit) {
  JobGraph job = Q3();
  sim::FlinkEngine engine = NoisyEngine(job);
  DeployOnes(&engine);
  engine.ScaleAllSources(10.0);
  ContTuneTuner conttune;
  auto outcome = conttune.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->total_parallelism, job.num_operators());
}

std::vector<ZeroTuneExample> ZeroTuneCorpus() {
  std::vector<JobGraph> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  core::HistoryOptions opts;
  opts.samples_per_job = 10;
  auto records = core::CollectHistory(jobs, opts);
  std::vector<ZeroTuneExample> examples;
  for (auto& r : records) {
    ZeroTuneExample ex;
    ex.graph = r.graph;
    ex.parallelism = r.parallelism;
    ex.cost = r.job_cost;
    examples.push_back(std::move(ex));
  }
  return examples;
}

TEST(ZeroTuneTest, RequiresTraining) {
  ZeroTuneTuner zerotune;
  EXPECT_FALSE(zerotune.trained());
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 7);
  sim::FlinkEngine engine = NoisyEngine(job);
  DeployOnes(&engine);
  EXPECT_FALSE(zerotune.Tune(&engine).ok());
  EXPECT_FALSE(zerotune.PredictCost(job, std::vector<int>(
                                             job.num_operators(), 1))
                   .ok());
}

TEST(ZeroTuneTest, TrainsAndPerformsSingleReconfiguration) {
  ZeroTuneOptions opts;
  opts.epochs = 15;
  ZeroTuneTuner zerotune(opts);
  ASSERT_TRUE(zerotune.Train(ZeroTuneCorpus()).ok());
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 7);
  sim::FlinkEngine engine = NoisyEngine(job);
  DeployOnes(&engine);
  engine.ScaleAllSources(10.0);
  auto outcome = zerotune.Tune(&engine);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->reconfigurations, 1);
  EXPECT_EQ(outcome->iterations, 1);
}

TEST(ZeroTuneTest, CostModelPrefersHigherParallelismUnderLoad) {
  ZeroTuneOptions opts;
  opts.epochs = 15;
  ZeroTuneTuner zerotune(opts);
  ASSERT_TRUE(zerotune.Train(ZeroTuneCorpus()).ok());
  JobGraph job = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 2);
  for (int v = 0; v < job.num_operators(); ++v) {
    if (job.op(v).is_source()) {
      job.mutable_op(v).source_rate *= 10;  // peak load
    }
  }
  std::vector<int> low(job.num_operators(), 1);
  std::vector<int> high(job.num_operators(), 40);
  auto c_low = zerotune.PredictCost(job, low);
  auto c_high = zerotune.PredictCost(job, high);
  ASSERT_TRUE(c_low.ok());
  ASSERT_TRUE(c_high.ok());
  EXPECT_GT(*c_low, *c_high);
}

TEST(ZeroTuneTest, RejectsMalformedTrainingData) {
  ZeroTuneTuner zerotune;
  EXPECT_FALSE(zerotune.Train({}).ok());
  ZeroTuneExample bad;
  bad.graph = workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 0);
  bad.parallelism = {1};  // wrong arity
  bad.cost = 1.0;
  EXPECT_FALSE(zerotune.Train({bad}).ok());
}

}  // namespace
}  // namespace streamtune::baselines
