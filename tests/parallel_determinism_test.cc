// Determinism of the parallel offline pipeline: every result must be
// bit-identical whether it runs on 1 thread or many, with or without the
// GED memo cache (see DESIGN.md "Concurrency model").

#include <gtest/gtest.h>

#include "core/history.h"
#include "core/pretrain.h"
#include "graph/ged_kmeans.h"
#include "workloads/pqp.h"

namespace streamtune {
namespace {

std::vector<JobGraph> MixedDataset() {
  std::vector<JobGraph> dags;
  for (int i = 0; i < 5; ++i) {
    dags.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  for (int i = 0; i < 5; ++i) {
    dags.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
  }
  for (int i = 0; i < 5; ++i) {
    dags.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
  }
  return dags;
}

TEST(ParallelDeterminismTest, ClusterDagsMatchesSerial) {
  auto dags = MixedDataset();
  graph::KMeansOptions serial;
  serial.k = 3;
  serial.num_threads = 1;
  graph::KMeansOptions parallel = serial;
  parallel.num_threads = 8;

  auto a = graph::ClusterDags(dags, serial);
  auto b = graph::ClusterDags(dags, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->center_indices, b->center_indices);
  EXPECT_DOUBLE_EQ(a->within_cluster_distance, b->within_cluster_distance);
  EXPECT_EQ(a->iterations, b->iterations);
}

TEST(ParallelDeterminismTest, CacheDoesNotChangeClustering) {
  // The memo table must be invisible: same assignments, centers and inertia
  // as the uncached (pre-cache) pipeline.
  auto dags = MixedDataset();
  graph::KMeansOptions uncached;
  uncached.k = 3;
  uncached.num_threads = 1;
  uncached.use_cache = false;
  graph::KMeansOptions cached = uncached;
  cached.use_cache = true;

  auto a = graph::ClusterDags(dags, uncached);
  auto b = graph::ClusterDags(dags, cached);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->center_indices, b->center_indices);
  EXPECT_DOUBLE_EQ(a->within_cluster_distance, b->within_cluster_distance);
}

TEST(ParallelDeterminismTest, ElbowMatchesSerial) {
  auto dags = MixedDataset();
  graph::KMeansOptions serial;
  serial.num_threads = 1;
  graph::KMeansOptions parallel = serial;
  parallel.num_threads = 8;

  auto a = graph::SelectKByElbow(dags, 2, 5, serial);
  auto b = graph::SelectKByElbow(dags, 2, 5, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ParallelDeterminismTest, ElbowShortRangeSkipsClustering) {
  auto dags = MixedDataset();
  graph::KMeansOptions opts;
  graph::GedCache cache;
  opts.cache = &cache;
  auto k = graph::SelectKByElbow(dags, 2, 3, opts);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 2);
  // Early return: no clustering, no GED work at all.
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
}

TEST(ParallelDeterminismTest, PretrainerMatchesSerial) {
  std::vector<JobGraph> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
    jobs.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
  }
  core::HistoryOptions hopts;
  hopts.samples_per_job = 3;
  auto corpus = core::CollectHistory(jobs, hopts);
  ASSERT_FALSE(corpus.empty());

  core::PretrainOptions base;
  base.k = 2;
  base.epochs = 2;
  core::PretrainOptions serial = base;
  serial.num_threads = 1;
  core::PretrainOptions parallel = base;
  parallel.num_threads = 8;

  auto a = core::Pretrainer(serial).Run(corpus);
  auto b = core::Pretrainer(parallel).Run(corpus);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_clusters(), b->num_clusters());
  for (int c = 0; c < a->num_clusters(); ++c) {
    const core::ClusterModel& ca = a->cluster(c);
    const core::ClusterModel& cb = b->cluster(c);
    EXPECT_EQ(ca.record_indices, cb.record_indices) << "cluster " << c;
    EXPECT_EQ(ca.center.name(), cb.center.name()) << "cluster " << c;

    // Model weights must be bit-identical (same seeds, same update order).
    auto pa = ca.encoder.Params();
    auto pb = cb.encoder.Params();
    auto ha = ca.head.Params();
    auto hb = cb.head.Params();
    pa.insert(pa.end(), ha.begin(), ha.end());
    pb.insert(pb.end(), hb.begin(), hb.end());
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t p = 0; p < pa.size(); ++p) {
      const ml::Matrix& ma = pa[p]->value;
      const ml::Matrix& mb = pb[p]->value;
      ASSERT_TRUE(ma.same_shape(mb));
      for (int r = 0; r < ma.rows(); ++r) {
        for (int col = 0; col < ma.cols(); ++col) {
          ASSERT_EQ(ma.at(r, col), mb.at(r, col))
              << "cluster " << c << " param " << p << " @ (" << r << ","
              << col << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace streamtune
