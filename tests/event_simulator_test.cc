// Discrete-event simulator tests: validation against the analytic
// steady-state flow solver, and queueing-level behaviours the fixed point
// cannot express.

#include <gtest/gtest.h>

#include "sim/event_simulator.h"
#include "sim/flow_solver.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"

namespace streamtune::sim {
namespace {

struct SimHarness {
  JobGraph graph;
  PerfModel model;
  std::vector<double> source_rates;
  std::vector<double> selectivity;

  explicit SimHarness(workloads::NexmarkQuery q)
      : graph(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink)),
        model(graph, workloads::CostConfigFor(graph)) {
    source_rates.assign(graph.num_operators(), 0.0);
    selectivity.resize(graph.num_operators());
    for (int v = 0; v < graph.num_operators(); ++v) {
      if (graph.op(v).is_source()) {
        source_rates[v] = graph.op(v).source_rate;
      }
      selectivity[v] = model.Selectivity(v);
    }
  }

  FlowResult Analytic(const std::vector<int>& parallelism) const {
    std::vector<double> capacity(graph.num_operators());
    for (int v = 0; v < graph.num_operators(); ++v) {
      capacity[v] = model.ProcessingAbility(v, parallelism[v]);
    }
    return SolveFlow(graph, capacity, selectivity, source_rates);
  }
};

TEST(EventSimTest, RejectsBadInput) {
  SimHarness s(workloads::NexmarkQuery::kQ1);
  std::vector<int> ones(s.graph.num_operators(), 1);
  EXPECT_FALSE(
      RunEventSimulation(s.graph, s.model, {1, 2}, s.source_rates).ok());
  std::vector<int> zeros(s.graph.num_operators(), 0);
  EXPECT_FALSE(
      RunEventSimulation(s.graph, s.model, zeros, s.source_rates).ok());
  EventSimConfig bad;
  bad.warmup_seconds = 10;
  bad.duration_seconds = 5;
  EXPECT_FALSE(
      RunEventSimulation(s.graph, s.model, ones, s.source_rates, bad).ok());
  std::vector<double> no_rates(s.graph.num_operators(), 0.0);
  EXPECT_FALSE(RunEventSimulation(s.graph, s.model, ones, no_rates).ok());
}

TEST(EventSimTest, WellProvisionedMatchesAnalyticBusyFractions) {
  SimHarness s(workloads::NexmarkQuery::kQ3);
  // Oracle-like parallelism: run the analytic solver's oracle degrees.
  std::vector<int> p(s.graph.num_operators());
  FlowResult unthrottled = s.Analytic(std::vector<int>(p.size(), 100));
  for (int v = 0; v < s.graph.num_operators(); ++v) {
    p[v] = std::min(
        100, s.model.MinParallelismFor(v, 1.25 * unthrottled.desired_in[v],
                                       100));
  }
  auto r = RunEventSimulation(s.graph, s.model, p, s.source_rates);
  ASSERT_TRUE(r.ok());
  FlowResult analytic = s.Analytic(p);
  EXPECT_GT(r->source_throughput_ratio, 0.95);
  for (int v = 0; v < s.graph.num_operators(); ++v) {
    EXPECT_NEAR(r->busy_frac[v], analytic.busy[v], 0.12)
        << "operator " << v << " (" << s.graph.op(v).name << ")";
    // Rates agree with the fixed point within sampling error.
    if (analytic.achieved_in[v] > 0) {
      EXPECT_NEAR(r->input_rate[v] / analytic.achieved_in[v], 1.0, 0.15)
          << "operator " << v;
    }
  }
}

TEST(EventSimTest, OverloadedJobShowsBackpressureAndThrottling) {
  SimHarness s(workloads::NexmarkQuery::kQ3);
  for (double& rate : s.source_rates) rate *= 10;  // peak demand
  std::vector<int> ones(s.graph.num_operators(), 1);
  auto r = RunEventSimulation(s.graph, s.model, ones, s.source_rates);
  ASSERT_TRUE(r.ok());
  FlowResult analytic = s.Analytic(ones);
  ASSERT_LT(analytic.lambda, 0.9);
  // The DES measures the same throughput collapse as the fixed point.
  EXPECT_NEAR(r->source_throughput_ratio, analytic.lambda, 0.15);
  // Operators blocked in the analytic model spend time blocked in the DES.
  bool any_blocked = false;
  for (int v = 0; v < s.graph.num_operators(); ++v) {
    if (analytic.blocked[v] && !s.graph.op(v).is_source()) {
      any_blocked |= r->blocked_frac[v] > 0.05;
    }
  }
  EXPECT_TRUE(any_blocked);
  // The bottleneck operator runs at (near) full utilization in both.
  for (int v = 0; v < s.graph.num_operators(); ++v) {
    if (analytic.saturated[v]) {
      EXPECT_GT(r->busy_frac[v] + r->blocked_frac[v], 0.75)
          << "operator " << v;
    }
  }
}

TEST(EventSimTest, QueuesGrowAtTheBottleneck) {
  SimHarness s(workloads::NexmarkQuery::kQ5);
  for (double& rate : s.source_rates) rate *= 10;
  std::vector<int> ones(s.graph.num_operators(), 1);
  auto r = RunEventSimulation(s.graph, s.model, ones, s.source_rates);
  ASSERT_TRUE(r.ok());
  FlowResult analytic = s.Analytic(ones);
  for (int v = 0; v < s.graph.num_operators(); ++v) {
    if (analytic.saturated[v] && !s.graph.op(v).is_source()) {
      // The bottleneck's queue sits near capacity.
      EXPECT_GT(r->avg_queue_length[v], 16.0) << "operator " << v;
    }
  }
}

TEST(EventSimTest, TimeRescalingPreservesUtilization) {
  SimHarness s(workloads::NexmarkQuery::kQ1);
  std::vector<int> p(s.graph.num_operators(), 30);
  EventSimConfig tight;
  tight.max_events = 50000;  // force heavy rescaling
  auto small = RunEventSimulation(s.graph, s.model, p, s.source_rates, tight);
  EventSimConfig loose;
  loose.max_events = 400000;
  auto big = RunEventSimulation(s.graph, s.model, p, s.source_rates, loose);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(small->time_rescale, big->time_rescale);
  for (int v = 0; v < s.graph.num_operators(); ++v) {
    EXPECT_NEAR(small->busy_frac[v], big->busy_frac[v], 0.12)
        << "operator " << v;
  }
}

TEST(EventSimTest, DeterministicForSeed) {
  SimHarness s(workloads::NexmarkQuery::kQ2);
  std::vector<int> p(s.graph.num_operators(), 5);
  auto a = RunEventSimulation(s.graph, s.model, p, s.source_rates);
  auto b = RunEventSimulation(s.graph, s.model, p, s.source_rates);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->events_processed, b->events_processed);
  for (int v = 0; v < s.graph.num_operators(); ++v) {
    EXPECT_DOUBLE_EQ(a->busy_frac[v], b->busy_frac[v]);
  }
  EventSimConfig other;
  other.seed = 1;
  auto c = RunEventSimulation(s.graph, s.model, p, s.source_rates, other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->events_processed, c->events_processed);
}

TEST(EventSimTest, SinkNeverBlocks) {
  SimHarness s(workloads::NexmarkQuery::kQ8);
  for (double& rate : s.source_rates) rate *= 10;
  std::vector<int> ones(s.graph.num_operators(), 1);
  auto r = RunEventSimulation(s.graph, s.model, ones, s.source_rates);
  ASSERT_TRUE(r.ok());
  for (int v = 0; v < s.graph.num_operators(); ++v) {
    if (s.graph.downstream(v).empty()) {
      EXPECT_DOUBLE_EQ(r->blocked_frac[v], 0.0);
    }
  }
}

}  // namespace
}  // namespace streamtune::sim
