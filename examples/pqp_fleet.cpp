// Example: operating a fleet of PQP streaming jobs with GED-clustered
// pre-training.
//
// Demonstrates the clustering machinery end-to-end: histories from many
// structurally diverse queries, elbow-selected k for GED k-means, per-
// cluster encoders, nearest-cluster assignment of unseen jobs, and tuning
// quality across the fleet.

#include <cstdio>
#include <memory>

#include "common/table_printer.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "graph/ged.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/pqp.h"

using namespace streamtune;

int main() {
  // Histories from a training slice of every PQP template.
  std::vector<JobGraph> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
  }
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
  }
  core::HistoryOptions hist;
  hist.samples_per_job = 15;
  auto corpus = core::CollectHistory(jobs, hist);

  // Pre-train with GED k-means; k chosen by the elbow method.
  core::PretrainOptions pre;
  pre.use_clustering = true;
  pre.k = 0;  // elbow
  pre.max_k = 4;
  auto bundle_res = core::Pretrainer(pre).Run(std::move(corpus));
  if (!bundle_res.ok()) {
    std::printf("pre-training failed: %s\n",
                bundle_res.status().ToString().c_str());
    return 1;
  }
  auto bundle =
      std::make_shared<core::PretrainedBundle>(std::move(*bundle_res));
  std::printf("elbow method selected k = %d clusters\n",
              bundle->num_clusters());
  for (int c = 0; c < bundle->num_clusters(); ++c) {
    std::printf("  cluster %d: center = %-22s (%zu records)\n", c,
                bundle->cluster(c).center.name().c_str(),
                bundle->cluster(c).record_indices.size());
  }

  // Tune a fleet of HELD-OUT variants at peak rate.
  TablePrinter table("fleet tuning (held-out PQP variants at 10x W_u)",
                     {"job", "assigned cluster", "GED to center",
                      "parallelism", "oracle", "reconfigs", "clean"});
  core::StreamTuneTuner tuner(bundle);
  std::vector<JobGraph> fleet;
  for (int i = 5; i < 8; ++i) {
    fleet.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  for (int i = 8; i < 11; ++i) {
    fleet.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
  }
  for (int i = 10; i < 13; ++i) {
    fleet.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
  }
  for (const JobGraph& job : fleet) {
    int c = bundle->AssignCluster(job);
    graph::GedResult ged = graph::ComputeGed(job, bundle->cluster(c).center);
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    sim::FlinkEngine engine(job, model, sim::SimConfig{});
    std::vector<int> ones(job.num_operators(), 1);
    (void)engine.Deploy(ones);
    engine.ScaleAllSources(10.0);
    auto outcome = tuner.Tune(&engine);
    if (!outcome.ok()) {
      std::printf("%s failed: %s\n", job.name().c_str(),
                  outcome.status().ToString().c_str());
      return 1;
    }
    int oracle = 0;
    for (int p : engine.OracleParallelism()) oracle += p;
    table.AddRow({job.name(), std::to_string(c),
                  TablePrinter::Fmt(ged.distance, 0),
                  std::to_string(outcome->total_parallelism),
                  std::to_string(oracle),
                  std::to_string(outcome->reconfigurations),
                  outcome->ended_with_backpressure ? "no" : "yes"});
  }
  table.Print();
  return 0;
}
