// Example: tuning a Nexmark query on the simulated Flink cluster with all
// four methods, across one cycle of source-rate fluctuations.
//
// Demonstrates the complete public API surface: workload construction,
// history collection, pre-training, the tuner interface, and engine
// metrics.

#include <cstdio>
#include <memory>

#include "baselines/conttune.h"
#include "baselines/ds2.h"
#include "common/table_printer.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/rate_schedule.h"

using namespace streamtune;

int main() {
  // 1. Execution histories from all Nexmark queries on the simulated Flink
  //    cluster, labeled with Algorithm 1.
  std::vector<JobGraph> jobs;
  for (auto q : workloads::AllNexmarkQueries()) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  core::HistoryOptions hist;
  hist.samples_per_job = 25;
  auto corpus = core::CollectHistory(jobs, hist);
  std::printf("collected %zu labeled history records\n", corpus.size());

  // 2. Pre-train the GNN encoders (single global encoder here).
  core::PretrainOptions pre;
  pre.use_clustering = false;
  auto bundle_res = core::Pretrainer(pre).Run(std::move(corpus));
  if (!bundle_res.ok()) {
    std::printf("pre-training failed: %s\n",
                bundle_res.status().ToString().c_str());
    return 1;
  }
  auto bundle =
      std::make_shared<core::PretrainedBundle>(std::move(*bundle_res));

  // 3. Drive Q5 through one 20-step rate sequence with each tuner.
  JobGraph target = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                               workloads::Engine::kFlink);
  auto sequence = workloads::RateSequence(0);

  TablePrinter table("Nexmark Q5 on simulated Flink, one rate cycle",
                     {"method", "final parallelism @last rate",
                      "avg reconfigs/change", "unresolved backpressure"});
  std::vector<std::unique_ptr<baselines::Tuner>> tuners;
  tuners.push_back(std::make_unique<baselines::Ds2Tuner>());
  tuners.push_back(std::make_unique<baselines::ContTuneTuner>());
  tuners.push_back(std::make_unique<core::StreamTuneTuner>(bundle));

  for (auto& tuner : tuners) {
    sim::PerfModel model(target, workloads::CostConfigFor(target));
    sim::FlinkEngine engine(target, model, sim::SimConfig{});
    std::vector<int> ones(target.num_operators(), 1);
    (void)engine.Deploy(ones);
    int reconfigs = 0, failures = 0, final_total = 0;
    for (double rate : sequence) {
      engine.ScaleAllSources(rate);
      auto outcome = tuner->Tune(&engine);
      if (!outcome.ok()) {
        std::printf("%s failed: %s\n", tuner->name().c_str(),
                    outcome.status().ToString().c_str());
        return 1;
      }
      reconfigs += outcome->reconfigurations;
      failures += outcome->ended_with_backpressure ? 1 : 0;
      final_total = outcome->total_parallelism;
    }
    table.AddRow({tuner->name(), std::to_string(final_total),
                  TablePrinter::Fmt(reconfigs / 20.0, 2),
                  std::to_string(failures)});
  }
  table.Print();
  return 0;
}
