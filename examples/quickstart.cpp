// Quickstart: the whole StreamTune pipeline on a small synthetic workload.
//
// 1. Build a few PQP streaming jobs and collect execution histories on the
//    simulated Flink cluster (random parallelisms + rates, Algorithm-1
//    labels).
// 2. Pre-train: GED-cluster the DAGs, train a GNN encoder per cluster.
// 3. Online-tune one job with StreamTune after a source-rate change, and
//    compare against DS2 on the same engine state.

#include <cstdio>
#include <memory>

#include "baselines/ds2.h"
#include "common/table_printer.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "sim/engine.h"
#include "workloads/cost_config.h"
#include "workloads/pqp.h"

using namespace streamtune;

namespace {

sim::FlinkEngine MakeEngine(const JobGraph& job) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  sim::SimConfig cfg;
  return sim::FlinkEngine(job, model, cfg);
}

}  // namespace

int main() {
  // ---- 1. Histories ----
  std::vector<JobGraph> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
  }
  core::HistoryOptions hist_opts;
  hist_opts.samples_per_job = 10;
  std::vector<core::HistoryRecord> corpus =
      core::CollectHistory(jobs, hist_opts);
  std::printf("collected %zu history records from %zu jobs\n", corpus.size(),
              jobs.size());

  // ---- 2. Pre-training ----
  core::PretrainOptions pre_opts;
  pre_opts.k = 2;
  pre_opts.epochs = 20;
  core::Pretrainer pretrainer(pre_opts);
  auto bundle_res = pretrainer.Run(std::move(corpus));
  if (!bundle_res.ok()) {
    std::printf("pre-training failed: %s\n",
                bundle_res.status().ToString().c_str());
    return 1;
  }
  auto bundle = std::make_shared<core::PretrainedBundle>(
      std::move(bundle_res).value());
  std::printf("pre-trained %d cluster encoder(s)\n", bundle->num_clusters());

  // ---- 3. Online tuning after a rate change ----
  JobGraph target = workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin,
                                           7);  // not in the corpus
  TablePrinter table("quickstart: tuning PQP 2-way-join variant 7 at 10x W_u",
                     {"method", "total parallelism", "reconfigurations",
                      "backpressure events", "oracle total"});

  for (int use_streamtune = 1; use_streamtune >= 0; --use_streamtune) {
    sim::FlinkEngine engine = MakeEngine(target);
    std::vector<int> ones(target.num_operators(), 1);
    (void)engine.Deploy(ones);
    engine.ScaleAllSources(10.0);
    engine.ResetCounters();

    std::unique_ptr<baselines::Tuner> tuner;
    if (use_streamtune) {
      tuner = std::make_unique<core::StreamTuneTuner>(bundle);
    } else {
      tuner = std::make_unique<baselines::Ds2Tuner>();
    }
    auto outcome = tuner->Tune(&engine);
    if (!outcome.ok()) {
      std::printf("%s failed: %s\n", tuner->name().c_str(),
                  outcome.status().ToString().c_str());
      return 1;
    }
    int oracle_total = 0;
    for (int p : engine.OracleParallelism()) oracle_total += p;
    table.AddRow({tuner->name(), std::to_string(outcome->total_parallelism),
                  std::to_string(outcome->reconfigurations),
                  std::to_string(outcome->backpressure_events),
                  std::to_string(oracle_total)});
  }
  table.Print();
  return 0;
}
