// Example: StreamTune on the Timely-Dataflow-like engine.
//
// Timely has no backpressure signal, so bottlenecks are detected with the
// 85% rate rule, and the observable symptom of under-provisioning is
// growing per-epoch latency. This example tunes Nexmark Q8 at peak load and
// shows the latency trace before and after tuning.

#include <cstdio>
#include <memory>

#include "common/math_util.h"
#include "common/table_printer.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "timelysim/timely_simulator.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"

using namespace streamtune;

namespace {

void PrintLatencies(const char* tag, timelysim::TimelySimulator* engine) {
  auto trace = engine->RunEpochs(100);
  if (!trace.ok()) return;
  std::printf("%-14s per-epoch latency: p50=%.2fs p90=%.2fs p99=%.2fs "
              "(last epoch %.2fs)\n",
              tag, Percentile(trace->latencies, 50),
              Percentile(trace->latencies, 90),
              Percentile(trace->latencies, 99), trace->latencies.back());
}

}  // namespace

int main() {
  // Histories and pre-training on the Timely engine (its physics differ
  // from Flink's, so it gets its own corpus).
  std::vector<JobGraph> jobs;
  for (auto q : {workloads::NexmarkQuery::kQ3, workloads::NexmarkQuery::kQ5,
                 workloads::NexmarkQuery::kQ8}) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kTimely));
  }
  auto factory = [](const JobGraph& g, uint64_t seed) {
    sim::PerfModel model(g, workloads::CostConfigFor(g));
    timelysim::TimelyConfig cfg;
    cfg.noise_seed = seed;
    return std::make_unique<timelysim::TimelySimulator>(g, model, cfg);
  };
  core::HistoryOptions hist;
  hist.samples_per_job = 25;
  hist.max_parallelism = 10;  // ten workers
  auto corpus = core::CollectHistory(jobs, hist, factory);
  core::PretrainOptions pre;
  pre.use_clustering = false;
  auto bundle_res = core::Pretrainer(pre).Run(std::move(corpus));
  if (!bundle_res.ok()) {
    std::printf("pre-training failed: %s\n",
                bundle_res.status().ToString().c_str());
    return 1;
  }
  auto bundle =
      std::make_shared<core::PretrainedBundle>(std::move(*bundle_res));

  // Deploy Q8 under-provisioned at peak rate.
  JobGraph job = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ8,
                                            workloads::Engine::kTimely);
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  timelysim::TimelySimulator engine(job, model, timelysim::TimelyConfig{});
  std::vector<int> ones(job.num_operators(), 1);
  (void)engine.Deploy(ones);
  engine.ScaleAllSources(10.0);

  std::printf("Nexmark Q8 on simulated Timely, 10 workers, 10x W_u\n\n");
  PrintLatencies("before tuning", &engine);

  core::StreamTuneTuner tuner(bundle);
  auto outcome = tuner.Tune(&engine);
  if (!outcome.ok()) {
    std::printf("tuning failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("\nStreamTune: %d reconfigurations, final parallelism:",
              outcome->reconfigurations);
  for (int p : outcome->final_parallelism) std::printf(" %d", p);
  std::printf(" (total %d)\n\n", outcome->total_parallelism);
  PrintLatencies("after tuning", &engine);

  auto m = engine.Measure();
  if (m.ok()) {
    std::printf("\nbottleneck detected by the 85%% rate rule: %s\n",
                m->job_backpressure ? "yes" : "no");
  }
  return 0;
}
