// Fig. 7b: StreamTune's tuning time for an unseen workload across periodic
// source-rate changes. A 2-way-join PQP query is withheld from pre-training
// and tuned under one permuted 20-step rate sequence; tuning time includes
// the 10-minute stabilization wait the engine enforces per reconfiguration
// (as in the paper's setup).

#include "bench_common.h"

using namespace streamtune;
using namespace streamtune::bench;

int main() {
  // Pre-train WITHOUT 2-way-join variant 12 (the case-study job).
  auto corpus = CollectFlinkCorpus();
  auto bundle = Pretrain(corpus);
  JobGraph job =
      workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 12);

  auto tuner = MakeTuner("StreamTune", bundle, nullptr);
  ScheduleResult r = RunFlinkSchedule(job, tuner.get(), 20);

  TablePrinter table("Fig. 7b: tuning time per source-rate change "
                     "(unseen 2-way-join query)",
                     {"change #", "rate (x W_u)", "tuning minutes"});
  double total = 0, max_m = 0, min_m = 1e9;
  for (size_t i = 0; i < r.tuning_minutes.size(); ++i) {
    table.AddRow({std::to_string(i + 1),
                  TablePrinter::Fmt(r.rate_multipliers[i], 0),
                  TablePrinter::Fmt(r.tuning_minutes[i], 0)});
    total += r.tuning_minutes[i];
    max_m = std::max(max_m, r.tuning_minutes[i]);
    min_m = std::min(min_m, r.tuning_minutes[i]);
  }
  table.Print();
  // The paper's reported band covers tuning processes that actually
  // reconfigured; warm processes that changed nothing cost ~0 minutes.
  double active_total = 0;
  int active = 0;
  for (double m : r.tuning_minutes) {
    if (m > 0) {
      active_total += m;
      ++active;
    }
  }
  std::printf(
      "\naverage tuning time: %.1f minutes over all changes (min %.0f, "
      "max %.0f)\n",
      total / r.tuning_minutes.size(), min_m, max_m);
  if (active > 0) {
    std::printf(
        "average over the %d changes that reconfigured: %.1f minutes\n",
        active, active_total / active);
  }
  std::printf(
      "Shape check (paper Fig. 7b): tuning time fluctuates between ~10 and\n"
      "~40 minutes across rate changes, averaging ~27 minutes; most of it\n"
      "is post-reconfiguration stabilization waiting.\n");
  return 0;
}
