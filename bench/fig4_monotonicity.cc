// Fig. 4: relationship between parallelism and processing ability for a
// filter operator and a window(ed aggregation) operator at a fixed source
// rate, and the bottleneck thresholds where backpressure disappears.

#include "bench_common.h"

using namespace streamtune;

int main() {
  // The paper's validation job (from the ZeroTune workload): a filter
  // feeding a window aggregation. Fix the source rate and one operator's
  // parallelism while sweeping the other.
  JobGraph job("fig4-filter-window");
  OperatorSpec src;
  src.name = "source";
  src.type = OperatorType::kSource;
  src.source_rate = 1.08e6;
  src.tuple_width_in = src.tuple_width_out = 128;
  OperatorSpec filter;
  filter.name = "filter";
  filter.type = OperatorType::kFilter;
  filter.tuple_width_in = filter.tuple_width_out = 128;
  OperatorSpec window;
  window.name = "window";
  window.type = OperatorType::kAggregate;
  window.window_type = WindowType::kTumbling;
  window.window_policy = WindowPolicy::kTime;
  window.window_length = 30;
  window.aggregate_function = AggregateFunction::kCount;
  window.tuple_width_in = 128;
  window.tuple_width_out = 64;
  OperatorSpec sink;
  sink.name = "sink";
  sink.type = OperatorType::kSink;
  sink.tuple_width_in = 64;
  int s = job.AddOperator(src);
  int f = job.AddOperator(filter);
  int w = job.AddOperator(window);
  int k = job.AddOperator(sink);
  (void)job.AddEdge(s, f);
  (void)job.AddEdge(f, w);
  (void)job.AddEdge(w, k);

  sim::CostModelConfig cost_cfg;
  cost_cfg.jitter = 0;
  sim::PerfModel model(job, cost_cfg);
  // Calibrated to the validation job of the paper (its Fig. 4 reports
  // bottleneck thresholds of 14 for the filter and 10 for the window).
  sim::CostProfile filter_prof;
  filter_prof.cost_per_record = 1.2e-5;
  filter_prof.selectivity = 0.5;
  filter_prof.scaling_gamma = 0.005;
  model.SetProfile(f, filter_prof);
  sim::CostProfile window_prof;
  window_prof.cost_per_record = 1.55e-5;
  window_prof.selectivity = 0.05;
  window_prof.scaling_gamma = 0.01;
  model.SetProfile(w, window_prof);
  sim::SimConfig cfg;
  cfg.useful_time_noise = 0;
  sim::FlinkSimulator engine(job, model, cfg);
  std::vector<int> oracle = engine.OracleParallelism();

  auto sweep = [&](int op, const char* name) {
    TablePrinter table(
        std::string("Fig. 4 (") + name +
            "): processing ability vs parallelism, source rate 1.08M rec/s",
        {"parallelism", "processing ability (rec/s)", "backpressure"});
    int threshold = -1;
    for (int p = 1; p <= 24; ++p) {
      std::vector<int> conf = oracle;
      for (int v = 0; v < job.num_operators(); ++v) {
        conf[v] = std::min(conf[v] + 4, 100);  // others amply provisioned
      }
      conf[op] = p;
      (void)engine.Deploy(conf);
      auto m = engine.Measure();
      bool bp = m->job_backpressure;
      if (!bp && threshold < 0) threshold = p;
      table.AddRow({std::to_string(p),
                    TablePrinter::Fmt(model.ProcessingAbility(op, p), 0),
                    bp ? "yes" : "no"});
    }
    table.Print();
    std::printf("%s bottleneck threshold: parallelism >= %d\n\n", name,
                threshold);
  };
  sweep(f, "filter operator");
  sweep(w, "window operator");
  std::printf(
      "Shape check (paper Fig. 4): processing ability rises monotonically\n"
      "with parallelism; below an operator-specific threshold the job is\n"
      "backpressured, above it the operator keeps up.\n");
  return 0;
}
