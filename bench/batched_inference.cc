// Cross-job batched GNN inference throughput on the tuner decision path.
//
// When many jobs wait for a recommendation at once (KB warm-start of a
// whole deployment, periodic re-tuning sweeps), the per-job path runs one
// tape forward per job: mostly small matmuls whose cost is dominated by
// per-call overhead. BatchedAgnosticEmbeddings instead packs the operator
// rows of every pending job into one tall matrix per GNN layer and applies
// the block-diagonal adjacency segment by segment, so each layer is a
// single wide matmul over the dispatched kernels.
//
// This bench sweeps batch sizes 1/8/64/512 over a mixed Nexmark+PQP job
// pool with randomized source rates (duplicate graphs allowed: the batch
// path dedups graph contexts by name, exactly like the tuner sees repeated
// deployments of the same query). Per batch size it times
//
//   sequential: per-job AgnosticEmbeddings (fresh GraphContext + tape
//               forward per job) — the lazy tuner path, and
//   batched:    cluster-grouped BatchedAgnosticEmbeddings,
//
// best-of ST_BENCH_REPS, and reports per-job latency plus decisions/sec.
// The batched embeddings must be bit-identical to the sequential ones
// under the active dispatch (the packed kernels process output rows
// independently), so any numeric drift fails the run.
//
// Results are spliced into BENCH_mltrain.json as a "batched_inference"
// section when ml_train_speedup already wrote it, else emitted standalone.
//
// Environment knobs:
//   ST_BENCH_REPS     timing repetitions; best-of is reported (default 5).
//   ST_BENCH_SAMPLES  history samples per job for the corpus (default 4).
//   ST_BENCH_EPOCHS   pre-training epochs (default 20).
//   ST_BENCH_HIDDEN   GNN hidden width (default 32).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "ml/matrix.h"
#include "workloads/nexmark.h"

using namespace streamtune;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One pending decision: a job from the pool with its own randomized rates.
struct Pending {
  const JobGraph* graph = nullptr;
  std::vector<double> rates;
  int cluster = -1;
};

struct SweepPoint {
  int batch = 0;
  double tape_loop_us_per_job = 0;  ///< per-job loop, scalar kernels
  double seq_us_per_job = 0;        ///< per-job loop, active dispatch
  double batched_us_per_job = 0;    ///< batched path, active dispatch
  double batched_decisions_per_sec = 0;
  double speedup = 0;               ///< tape_loop / batched
  double speedup_same_dispatch = 0; ///< seq / batched
};

// Pins the scalar kernel table for the baseline measurements, restoring the
// process's own dispatch (and any pre-set override) on destruction. Uses
// the same env + reinit hook as the test suite.
class ScopedScalarDispatch {
 public:
  ScopedScalarDispatch() {
    const char* prev = std::getenv("STREAMTUNE_FORCE_SCALAR");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("STREAMTUNE_FORCE_SCALAR", "1", 1);
    ml::ReinitKernelDispatchForTest();
  }
  ~ScopedScalarDispatch() {
    if (had_prev_) {
      setenv("STREAMTUNE_FORCE_SCALAR", prev_.c_str(), 1);
    } else {
      unsetenv("STREAMTUNE_FORCE_SCALAR");
    }
    ml::ReinitKernelDispatchForTest();
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

bool BitIdentical(const ml::Matrix& a, const ml::Matrix& b) {
  if (!a.same_shape(b)) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

}  // namespace

int main() {
  const int reps = bench::EnvInt("ST_BENCH_REPS", 5);
  const std::vector<int> batch_sizes = {1, 8, 64, 512};

  std::vector<JobGraph> pool = bench::FlinkCorpusJobs();
  core::HistoryOptions hopts;
  hopts.samples_per_job = bench::EnvInt("ST_BENCH_SAMPLES", 4);
  std::vector<core::HistoryRecord> corpus =
      core::CollectHistory(pool, hopts);

  core::PretrainOptions popts;
  popts.k = 2;
  popts.epochs = bench::EnvInt("ST_BENCH_EPOCHS", 20);
  popts.hidden_dim = bench::EnvInt("ST_BENCH_HIDDEN", 32);
  popts.gnn_layers = 3;
  auto bundle = core::Pretrainer(popts).Run(corpus);
  if (!bundle.ok()) {
    std::fprintf(stderr, "pre-training failed: %s\n",
                 bundle.status().ToString().c_str());
    return 1;
  }
  std::printf("pool: %zu jobs, %zu records, hidden=%d, dispatch=%s\n",
              pool.size(), corpus.size(), popts.hidden_dim,
              ml::ActiveKernelDispatch());

  // Pending jobs for the largest batch; smaller batches are prefixes.
  // Rates are randomized per pending job so no two decisions are the same
  // even when the graph repeats. Cluster assignment (GED to the centers)
  // is precomputed: both paths need it and it is not what this measures.
  const int max_batch = batch_sizes.back();
  Rng rng(4242);
  std::vector<Pending> pending(max_batch);
  for (int i = 0; i < max_batch; ++i) {
    Pending& p = pending[i];
    p.graph = &pool[rng.UniformInt(0, static_cast<int>(pool.size()) - 1)];
    p.rates.resize(p.graph->num_operators());
    for (double& r : p.rates) r = 50.0 + 450.0 * rng.Uniform();
    p.cluster = bundle->AssignCluster(*p.graph);
  }

  // Correctness first: batched == sequential, bitwise, at the largest size.
  bool bit_identical = true;
  {
    std::vector<std::vector<size_t>> by_cluster(bundle->num_clusters());
    for (size_t i = 0; i < pending.size(); ++i) {
      by_cluster[pending[i].cluster].push_back(i);
    }
    for (int c = 0; c < bundle->num_clusters(); ++c) {
      if (by_cluster[c].empty()) continue;
      std::vector<core::PretrainedBundle::EmbeddingQuery> queries;
      queries.reserve(by_cluster[c].size());
      for (size_t i : by_cluster[c]) {
        queries.push_back({pending[i].graph, &pending[i].rates});
      }
      std::vector<ml::Matrix> batched =
          bundle->BatchedAgnosticEmbeddings(c, queries);
      for (size_t k = 0; k < by_cluster[c].size(); ++k) {
        const Pending& p = pending[by_cluster[c][k]];
        if (!BitIdentical(batched[k], bundle->AgnosticEmbeddings(
                                          c, *p.graph, p.rates))) {
          bit_identical = false;
        }
      }
    }
  }
  if (!bit_identical) {
    std::fprintf(stderr, "BATCHED EMBEDDING MISMATCH\n");
  }

  // The three timed paths per batch size. The headline baseline is the
  // pre-SIMD decision path — the per-job tape loop on the scalar kernels —
  // so `speedup` is the full improvement this PR's two changes deliver
  // together at that batch size; `speedup_same_dispatch` isolates what
  // packing alone buys once both sides run the vectorized kernels.
  auto time_seq = [&](int batch) {
    double best = 1e18;
    for (int rep = 0; rep < reps; ++rep) {
      const double t0 = NowMs();
      for (int i = 0; i < batch; ++i) {
        const Pending& p = pending[i];
        ml::Matrix emb =
            bundle->AgnosticEmbeddings(p.cluster, *p.graph, p.rates);
        (void)emb;
      }
      best = std::min(best, NowMs() - t0);
    }
    return best;
  };
  auto time_batched = [&](int batch) {
    double best = 1e18;
    for (int rep = 0; rep < reps; ++rep) {
      // Grouped by cluster like the tuner's BatchedInference.
      const double t0 = NowMs();
      std::vector<std::vector<size_t>> by_cluster(bundle->num_clusters());
      for (int i = 0; i < batch; ++i) {
        by_cluster[pending[i].cluster].push_back(i);
      }
      for (int c = 0; c < bundle->num_clusters(); ++c) {
        if (by_cluster[c].empty()) continue;
        std::vector<core::PretrainedBundle::EmbeddingQuery> queries;
        queries.reserve(by_cluster[c].size());
        for (size_t i : by_cluster[c]) {
          queries.push_back({pending[i].graph, &pending[i].rates});
        }
        std::vector<ml::Matrix> embs =
            bundle->BatchedAgnosticEmbeddings(c, queries);
        (void)embs;
      }
      best = std::min(best, NowMs() - t0);
    }
    return best;
  };

  std::vector<SweepPoint> points;
  for (int batch : batch_sizes) {
    SweepPoint pt;
    pt.batch = batch;
    double tape_ms = 0;
    {
      ScopedScalarDispatch scalar;
      tape_ms = time_seq(batch);
    }
    const double seq_ms = time_seq(batch);
    const double bat_ms = time_batched(batch);
    pt.tape_loop_us_per_job = tape_ms * 1000.0 / batch;
    pt.seq_us_per_job = seq_ms * 1000.0 / batch;
    pt.batched_us_per_job = bat_ms * 1000.0 / batch;
    pt.batched_decisions_per_sec = bat_ms > 0 ? batch / (bat_ms / 1000.0) : 0;
    pt.speedup = bat_ms > 0 ? tape_ms / bat_ms : 0;
    pt.speedup_same_dispatch = bat_ms > 0 ? seq_ms / bat_ms : 0;
    points.push_back(pt);
    std::printf(
        "[batch %4d] scalar tape loop %8.1f us/job | simd per-job %7.1f "
        "us/job | batched %7.1f us/job  (%.2fx total, %.2fx vs simd "
        "per-job, %.0f decisions/s)\n",
        pt.batch, pt.tape_loop_us_per_job, pt.seq_us_per_job,
        pt.batched_us_per_job, pt.speedup, pt.speedup_same_dispatch,
        pt.batched_decisions_per_sec);
  }

  double speedup_at_64 = 0;
  for (const SweepPoint& pt : points) {
    if (pt.batch == 64) speedup_at_64 = pt.speedup;
  }
  std::printf("\nbatch-64 speedup vs per-job tape loop: %.2fx; "
              "bit-identical: %s\n",
              speedup_at_64, bit_identical ? "yes" : "NO (BUG)");

  // JSON section, spliced into ml_train_speedup's file when present.
  std::ostringstream sec;
  sec << "{\n"
      << "    \"pool_jobs\": " << pool.size() << ",\n"
      << "    \"clusters\": " << bundle->num_clusters() << ",\n"
      << "    \"hidden_dim\": " << popts.hidden_dim << ",\n"
      << "    \"sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    char line[320];
    std::snprintf(line, sizeof(line),
                  "      {\"batch\": %d, \"tape_loop_us_per_job\": %.2f, "
                  "\"seq_simd_us_per_job\": %.2f, "
                  "\"batched_us_per_job\": %.2f, \"speedup\": %.3f, "
                  "\"speedup_same_dispatch\": %.3f, "
                  "\"decisions_per_sec\": %.0f}%s\n",
                  pt.batch, pt.tape_loop_us_per_job, pt.seq_us_per_job,
                  pt.batched_us_per_job, pt.speedup,
                  pt.speedup_same_dispatch, pt.batched_decisions_per_sec,
                  i + 1 < points.size() ? "," : "");
    sec << line;
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "    ],\n    \"speedup_at_64\": %.3f,\n"
                "    \"bit_identical\": %s\n  }",
                speedup_at_64, bit_identical ? "true" : "false");
  sec << tail;

  std::string existing;
  {
    std::ifstream in("BENCH_mltrain.json");
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  std::string out;
  const std::string key = "\"batched_inference\"";
  size_t prev = existing.find(key);
  if (prev != std::string::npos) {
    // Re-run: drop the stale section (it is always the trailing member).
    size_t cut = existing.rfind(",\n", prev);
    if (cut != std::string::npos) existing.erase(cut);
    existing += "\n}\n";
  }
  size_t close = existing.rfind('}');
  if (close != std::string::npos) {
    out = existing.substr(0, close);
    while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
      out.pop_back();
    }
    out += ",\n  \"batched_inference\": " + sec.str() + "\n}\n";
  } else {
    out = "{\n  \"host\": " + bench::HostInfoJson() +
          ",\n  \"batched_inference\": " + sec.str() + "\n}\n";
  }
  std::ofstream f("BENCH_mltrain.json", std::ios::trunc);
  f << out;
  f.close();
  std::printf("wrote batched_inference section to BENCH_mltrain.json\n");
  return bit_identical ? 0 : 1;
}
