// ML-core speedup against the frozen pre-refactor baseline.
//
// The baseline is a verbatim replica of the deleted Var-graph engine
// (shared_ptr node per op, fresh allocations every step, allocating scalar
// Matrix methods, adjacency re-derived per call), embedded below so the
// benchmark keeps measuring the same reference path after the shim's
// removal. The candidate is the current decision path: the tape engine
// (arena-allocated records, reused buffers, transpose-free backward) on top
// of the dispatched kernels (AVX2+FMA where the host supports it).
//
// Three measurements, all over the real training/inference paths:
//
//   1. GNN training-epoch throughput: epochs of forward + backward over the
//      Nexmark history corpus. Baseline rebuilds features/targets/
//      parallelism column and re-derives the normalized adjacencies per
//      sample per epoch; the tape step uses hoisted per-sample inputs, a
//      cached GraphContext, and one persistent tape. The engine-independent
//      Adam update is excluded from both sides. Losses are checked
//      bit-identical under the scalar dispatch and to 1e-9 relative under
//      SIMD (FMA reassociates the matmul reductions).
//   2. Full Pretrainer::Run wall time at 1/4/8 worker threads; serialized
//      bundles must be byte-identical across every thread count.
//   3. Single-graph inference latency: parallelism-agnostic embeddings of
//      one DAG, baseline vs tape path, checked like (1).
//
// Emits BENCH_mltrain.json. Exits 1 only on a numerics mismatch.
//
// Environment knobs:
//   ST_BENCH_EPOCH_ITERS  epochs for the epoch-throughput section (default 50).
//   ST_BENCH_REPS         timing repetitions; best-of is reported (default 7).
//   ST_BENCH_EPOCHS       Pretrainer epochs per full run (default 40).
//   ST_BENCH_SAMPLES      history samples per job (default 6).
//   ST_BENCH_INFER        inference iterations per engine (default 2000).
//   ST_BENCH_HIDDEN       GNN hidden width (default 32).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/serialization.h"
#include "ml/gnn.h"
#include "ml/matrix.h"
#include "ml/nn.h"
#include "ml/tape.h"
#include "workloads/nexmark.h"

using namespace streamtune;

// ---------------------------------------------------------------------------
// The frozen baseline: the old Var autograd engine, verbatim. Only the ops
// on the benched paths (GNN forward, MLP head, masked BCE, backward) are
// kept. Everything allocates exactly like the original did, and every
// Matrix call is an allocating method — the scalar reference path, outside
// the kernel dispatch.

namespace legacy {

using ml::Matrix;

struct LNode {
  Matrix value;
  Matrix grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<LNode>> inputs;
  std::function<void()> backward_fn;

  explicit LNode(Matrix v, bool rg) : value(std::move(v)), requires_grad(rg) {}
  bool has_grad() const { return grad.rows() > 0; }
  void AccumGrad(const Matrix& g) {
    if (!has_grad()) {
      grad = g;
    } else {
      grad = grad.Add(g);
    }
  }
  void ZeroGrad() { grad = Matrix(); }
};

using LVar = std::shared_ptr<LNode>;

LVar LConstant(Matrix v) { return std::make_shared<LNode>(std::move(v), false); }
LVar LParam(Matrix v) { return std::make_shared<LNode>(std::move(v), true); }

LVar MakeOp(Matrix value, std::vector<LVar> inputs) {
  auto n = std::make_shared<LNode>(std::move(value), false);
  n->inputs = std::move(inputs);
  return n;
}

LVar MatMul(const LVar& a, const LVar& b) {
  LVar out = MakeOp(a->value.MatMul(b->value), {a, b});
  LNode* o = out.get();
  out->backward_fn = [o, a, b]() {
    a->AccumGrad(o->grad.MatMul(b->value.Transpose()));
    b->AccumGrad(a->value.Transpose().MatMul(o->grad));
  };
  return out;
}

LVar Add(const LVar& a, const LVar& b) {
  LVar out = MakeOp(a->value.Add(b->value), {a, b});
  LNode* o = out.get();
  out->backward_fn = [o, a, b]() {
    a->AccumGrad(o->grad);
    b->AccumGrad(o->grad);
  };
  return out;
}

LVar AddRowBroadcast(const LVar& a, const LVar& row) {
  LVar out = MakeOp(a->value.AddRowBroadcast(row->value), {a, row});
  LNode* o = out.get();
  out->backward_fn = [o, a, row]() {
    a->AccumGrad(o->grad);
    row->AccumGrad(o->grad.SumRows());
  };
  return out;
}

LVar Relu(const LVar& a) {
  Matrix v = a->value;
  for (double& x : v.data()) x = std::max(0.0, x);
  LVar out = MakeOp(std::move(v), {a});
  LNode* o = out.get();
  out->backward_fn = [o, a]() {
    Matrix g = o->grad;
    const auto& in = a->value.data();
    for (size_t i = 0; i < g.data().size(); ++i) {
      if (in[i] <= 0.0) g.data()[i] = 0.0;
    }
    a->AccumGrad(g);
  };
  return out;
}

LVar TanhOp(const LVar& a) {
  Matrix v = a->value;
  for (double& x : v.data()) x = std::tanh(x);
  LVar out = MakeOp(std::move(v), {a});
  LNode* o = out.get();
  out->backward_fn = [o, a]() {
    Matrix g = o->grad;
    const auto& y = o->value.data();
    for (size_t i = 0; i < g.data().size(); ++i) {
      g.data()[i] *= 1.0 - y[i] * y[i];
    }
    a->AccumGrad(g);
  };
  return out;
}

LVar ConcatCols(const LVar& a, const LVar& b) {
  LVar out = MakeOp(a->value.ConcatCols(b->value), {a, b});
  LNode* o = out.get();
  out->backward_fn = [o, a, b]() {
    int ac = a->value.cols();
    a->AccumGrad(o->grad.SliceCols(0, ac));
    b->AccumGrad(o->grad.SliceCols(ac, o->grad.cols()));
  };
  return out;
}

LVar RmsNormRows(const LVar& a, double eps = 1e-6) {
  const int rows = a->value.rows(), cols = a->value.cols();
  Matrix v(rows, cols);
  std::vector<double> inv_rms(rows);
  for (int r = 0; r < rows; ++r) {
    double ms = 0;
    for (int c = 0; c < cols; ++c) ms += a->value.at(r, c) * a->value.at(r, c);
    ms = ms / cols + eps;
    inv_rms[r] = 1.0 / std::sqrt(ms);
    for (int c = 0; c < cols; ++c) v.at(r, c) = a->value.at(r, c) * inv_rms[r];
  }
  LVar out = MakeOp(std::move(v), {a});
  LNode* o = out.get();
  out->backward_fn = [o, a, inv_rms, cols]() {
    Matrix g(a->value.rows(), a->value.cols());
    for (int r = 0; r < g.rows(); ++r) {
      double m = 0;
      for (int c = 0; c < cols; ++c) m += o->grad.at(r, c) * o->value.at(r, c);
      m /= cols;
      for (int c = 0; c < cols; ++c) {
        g.at(r, c) = inv_rms[r] * (o->grad.at(r, c) - o->value.at(r, c) * m);
      }
    }
    a->AccumGrad(g);
  };
  return out;
}

LVar BceWithLogitsMasked(const LVar& logits, const Matrix& targets,
                         const Matrix& mask) {
  double count = 0;
  for (double m : mask.data()) {
    if (m != 0.0) count += 1.0;
  }
  Matrix v(1, 1);
  if (count > 0) {
    double total = 0;
    const auto& z = logits->value.data();
    const auto& y = targets.data();
    const auto& mk = mask.data();
    for (size_t i = 0; i < z.size(); ++i) {
      if (mk[i] == 0.0) continue;
      // Stable: max(z,0) - z*y + log(1 + exp(-|z|)).
      total += std::max(z[i], 0.0) - z[i] * y[i] +
               std::log1p(std::exp(-std::fabs(z[i])));
    }
    v.at(0, 0) = total / count;
  }
  LVar out = MakeOp(std::move(v), {logits});
  LNode* o = out.get();
  Matrix tg = targets, mk = mask;
  out->backward_fn = [o, logits, tg, mk, count]() {
    if (count == 0) return;
    Matrix g(logits->value.rows(), logits->value.cols());
    const auto& z = logits->value.data();
    for (size_t i = 0; i < z.size(); ++i) {
      if (mk.data()[i] == 0.0) continue;
      double s = z[i] >= 0 ? 1.0 / (1.0 + std::exp(-z[i]))
                           : std::exp(z[i]) / (1.0 + std::exp(z[i]));
      g.data()[i] = o->grad.at(0, 0) * (s - tg.data()[i]) / count;
    }
    logits->AccumGrad(g);
  };
  return out;
}

void Backward(const LVar& root) {
  // Post-order DFS for a topological order of the graph above `root`.
  // (The visited set is membership-only, never iterated: determinism-safe.)
  std::vector<LNode*> order;
  std::unordered_set<LNode*> visited;
  visited.insert(root.get());
  std::vector<LVar> node_stack{root};
  std::vector<size_t> idx_stack{0};
  std::vector<LVar> keepalive;
  while (!node_stack.empty()) {
    LVar cur = node_stack.back();
    size_t& i = idx_stack.back();
    if (i < cur->inputs.size()) {
      LVar next = cur->inputs[i++];
      if (visited.insert(next.get()).second) {
        node_stack.push_back(next);
        idx_stack.push_back(0);
      }
    } else {
      order.push_back(cur.get());
      keepalive.push_back(cur);
      node_stack.pop_back();
      idx_stack.pop_back();
    }
  }

  for (LNode* n : order) n->ZeroGrad();
  Matrix seed(1, 1);
  seed.at(0, 0) = 1.0;
  root->grad = seed;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    LNode* n = *it;
    if (n->backward_fn && n->has_grad()) n->backward_fn();
  }
}

// The old GnnEncoder + Mlp forwards, on weights shared with the current
// modules (GnnEncoder::Params() order: input W, input b, then per layer
// w_up/w_dn/w_self/bias, then w_fuse/b_fuse; Mlp::Params(): W, b per
// layer). Like the original, the adjacency is re-derived on every call.
struct LegacyGnn {
  std::vector<LVar> params;  // same order as GnnEncoder::Params()
  int num_layers = 0;

  explicit LegacyGnn(const ml::GnnEncoder& enc)
      : num_layers(enc.config().num_layers) {
    for (const ml::Var& p : enc.Params()) params.push_back(LParam(p->value));
  }

  LVar ForwardAgnostic(const JobGraph& graph, const Matrix& features) const {
    LVar a_up = LConstant(ml::GnnEncoder::NormalizedUpstreamAdj(graph));
    LVar a_dn = LConstant(ml::GnnEncoder::NormalizedDownstreamAdj(graph));
    LVar x = LConstant(features);

    LVar h = RmsNormRows(
        Relu(AddRowBroadcast(MatMul(x, params[0]), params[1])));
    for (int t = 0; t < num_layers; ++t) {
      const LVar& w_up = params[2 + 4 * t];
      const LVar& w_dn = params[3 + 4 * t];
      const LVar& w_self = params[4 + 4 * t];
      const LVar& bias = params[5 + 4 * t];
      LVar msg_up = MatMul(MatMul(a_up, h), w_up);
      LVar msg_dn = MatMul(MatMul(a_dn, h), w_dn);
      LVar self = MatMul(h, w_self);
      LVar m = AddRowBroadcast(Add(Add(msg_up, msg_dn), self), bias);
      h = RmsNormRows(Relu(m));
    }
    return h;
  }

  LVar Forward(const JobGraph& graph, const Matrix& features,
               const Matrix& parallelism_scaled) const {
    LVar agnostic = ForwardAgnostic(graph, features);
    LVar p_col = LConstant(parallelism_scaled);
    const LVar& w_fuse = params[params.size() - 2];
    const LVar& b_fuse = params[params.size() - 1];
    LVar fused = MatMul(ConcatCols(agnostic, p_col), w_fuse);
    return TanhOp(AddRowBroadcast(fused, b_fuse));
  }
};

struct LegacyMlp {
  std::vector<LVar> params;  // W, b per layer

  explicit LegacyMlp(const ml::Mlp& mlp) {
    for (const ml::Var& p : mlp.Params()) params.push_back(LParam(p->value));
  }

  LVar Forward(const LVar& x) const {
    LVar h = x;
    const size_t layers = params.size() / 2;
    for (size_t i = 0; i < layers; ++i) {
      h = AddRowBroadcast(MatMul(h, params[2 * i]), params[2 * i + 1]);
      if (i + 1 < layers) h = Relu(h);
    }
    return h;
  }
};

}  // namespace legacy

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Hidden() { return EnvInt("ST_BENCH_HIDDEN", 32); }
int Reps() { return EnvInt("ST_BENCH_REPS", 7); }

// Under the scalar dispatch baseline and tape follow identical arithmetic:
// exact equality. Under SIMD the matmul reductions reassociate: 1e-9
// relative over a 3-layer GNN.
bool NumericsMatch(double got, double want) {
  if (std::strcmp(ml::ActiveKernelDispatch(), "scalar") == 0) {
    return got == want;
  }
  return std::fabs(got - want) <= 1e-9 * std::max(1.0, std::fabs(want));
}

core::PretrainOptions BenchOptions(int epochs, int threads) {
  core::PretrainOptions opts;
  opts.k = 2;
  opts.epochs = epochs;
  opts.hidden_dim = Hidden();
  opts.gnn_layers = 3;
  opts.num_threads = threads;
  return opts;
}

std::string SerializedBundle(const core::PretrainedBundle& bundle) {
  std::ostringstream os;
  Status s = core::WriteBundleBody(os, bundle);
  if (!s.ok()) {
    std::fprintf(stderr, "WriteBundleBody failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return os.str();
}

struct TrainRun {
  double ms = 0;
  std::string serialized;
};

TrainRun RunTraining(const std::vector<core::HistoryRecord>& corpus,
                     int epochs, int threads) {
  core::Pretrainer trainer(BenchOptions(epochs, threads));
  TrainRun out;
  double t0 = NowMs();
  auto bundle = trainer.Run(corpus);
  out.ms = NowMs() - t0;
  if (!bundle.ok()) {
    std::fprintf(stderr, "Pretrainer::Run failed: %s\n",
                 bundle.status().ToString().c_str());
    std::exit(1);
  }
  out.serialized = SerializedBundle(*bundle);
  return out;
}

ml::Matrix FeatureMatrix(const FeatureEncoder& fe, const JobGraph& g,
                         const std::vector<double>& rates) {
  return ml::Matrix::FromRows(fe.EncodeGraphWithRates(g, rates));
}

ml::Matrix ParallelismColumn(const FeatureEncoder& fe,
                             const std::vector<int>& p) {
  ml::Matrix col(static_cast<int>(p.size()), 1);
  for (size_t i = 0; i < p.size(); ++i) {
    col.at(static_cast<int>(i), 0) = fe.ScaleParallelism(p[i]);
  }
  return col;
}

struct EpochBench {
  double var_ms = 0;
  double tape_ms = 0;
  int samples = 0;
  bool numerics_ok = true;
};

// Epoch throughput: the per-sample forward + backward step exactly as the
// two training loops perform it, minus opt.Step() (Adam is engine-
// independent). Both sides run against the same frozen weights, so
// per-sample losses must match under NumericsMatch.
EpochBench RunEpochBench(const std::vector<core::HistoryRecord>& corpus,
                         int iters) {
  EpochBench out;
  FeatureEncoder fe;
  ml::GnnConfig gcfg;
  gcfg.feature_dim = FeatureEncoder::FeatureDim();
  gcfg.hidden_dim = Hidden();
  gcfg.num_layers = 3;
  gcfg.seed = 777;
  ml::GnnEncoder encoder(gcfg);
  Rng head_rng(778);
  ml::Mlp head({Hidden(), 16, 1}, ml::Activation::kRelu, &head_rng);
  legacy::LegacyGnn legacy_encoder(encoder);
  legacy::LegacyMlp legacy_head(head);

  // Tape-path inputs: prepared once, reused every epoch (what the tape
  // refactor hoisted out of the epoch loop).
  struct Prepared {
    ml::GraphContext ctx;
    ml::Matrix features, pcol, targets, mask;
    bool any = false;
  };
  std::vector<Prepared> prepared(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    const core::HistoryRecord& rec = corpus[i];
    Prepared& ps = prepared[i];
    ps.ctx = ml::GraphContext::Build(rec.graph);
    ps.features = FeatureMatrix(fe, rec.graph, rec.source_rates);
    ps.pcol = ParallelismColumn(fe, rec.parallelism);
    const int n = rec.graph.num_operators();
    ps.targets = ml::Matrix(n, 1);
    ps.mask = ml::Matrix(n, 1);
    for (int v = 0; v < n; ++v) {
      if (rec.labels[v] >= 0) {
        ps.targets.at(v, 0) = rec.labels[v];
        ps.mask.at(v, 0) = 1.0;
        ps.any = true;
      }
    }
    if (ps.any) ++out.samples;
  }

  std::vector<double> baseline_losses;
  ml::Tape tape;

  // Reps interleave the two engines and report best-of so a background noise
  // spike on a shared machine cannot skew one side's measurement.
  for (int rep = 0; rep < Reps(); ++rep) {
    // Baseline epoch: rebuild every per-sample input and re-derive the
    // adjacencies each time, then run the frozen Var-engine replica.
    double t0 = NowMs();
    for (int it = 0; it < iters; ++it) {
      for (const core::HistoryRecord& rec : corpus) {
        const int n = rec.graph.num_operators();
        ml::Matrix targets(n, 1), mask(n, 1);
        bool any = false;
        for (int v = 0; v < n; ++v) {
          if (rec.labels[v] >= 0) {
            targets.at(v, 0) = rec.labels[v];
            mask.at(v, 0) = 1.0;
            any = true;
          }
        }
        if (!any) continue;
        legacy::LVar emb = legacy_encoder.Forward(
            rec.graph, FeatureMatrix(fe, rec.graph, rec.source_rates),
            ParallelismColumn(fe, rec.parallelism));
        legacy::LVar logits = legacy_head.Forward(emb);
        legacy::LVar loss =
            legacy::BceWithLogitsMasked(logits, targets, mask);
        legacy::Backward(loss);
        if (rep == 0 && it == 0) {
          baseline_losses.push_back(loss->value.at(0, 0));
        }
      }
    }
    const double var_ms = NowMs() - t0;
    if (rep == 0 || var_ms < out.var_ms) out.var_ms = var_ms;

    // Tape epoch: hoisted inputs + one persistent tape + dispatched kernels.
    size_t li = 0;
    double t1 = NowMs();
    for (int it = 0; it < iters; ++it) {
      for (const Prepared& ps : prepared) {
        if (!ps.any) continue;
        tape.Reset();
        ml::Tape::Ref emb =
            encoder.Forward(&tape, ps.ctx, ps.features, ps.pcol);
        ml::Tape::Ref logits = head.Forward(&tape, emb);
        ml::Tape::Ref loss =
            tape.BceWithLogitsMasked(logits, &ps.targets, &ps.mask);
        tape.Backward(loss);
        if (rep == 0 && it == 0 &&
            !NumericsMatch(tape.value(loss).at(0, 0), baseline_losses[li++])) {
          out.numerics_ok = false;
        }
      }
    }
    const double tape_ms = NowMs() - t1;
    if (rep == 0 || tape_ms < out.tape_ms) out.tape_ms = tape_ms;
  }
  return out;
}

}  // namespace

int main() {
  const int epoch_iters = EnvInt("ST_BENCH_EPOCH_ITERS", 50);
  const int epochs = EnvInt("ST_BENCH_EPOCHS", 40);
  const int samples = EnvInt("ST_BENCH_SAMPLES", 6);
  const int infer_iters = EnvInt("ST_BENCH_INFER", 2000);
  const std::vector<int> thread_counts = {1, 4, 8};

  std::vector<JobGraph> jobs;
  for (workloads::NexmarkQuery q : workloads::AllNexmarkQueries()) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  core::HistoryOptions hopts;
  hopts.samples_per_job = samples;
  std::vector<core::HistoryRecord> corpus = core::CollectHistory(jobs, hopts);
  std::printf("corpus: %zu records over %zu jobs (hidden=%d, dispatch=%s)\n",
              corpus.size(), jobs.size(), Hidden(),
              ml::ActiveKernelDispatch());

  bool numerics_ok = true;

  // --- 1. GNN training-epoch throughput -------------------------------
  EpochBench eb = RunEpochBench(corpus, epoch_iters);
  const double epoch_speedup = eb.tape_ms > 0 ? eb.var_ms / eb.tape_ms : 0.0;
  std::printf(
      "[epoch] %d epochs x %d samples: baseline %.0f ms -> tape %.0f ms "
      "(%.2fx)\n",
      epoch_iters, eb.samples, eb.var_ms, eb.tape_ms, epoch_speedup);
  if (!eb.numerics_ok) {
    numerics_ok = false;
    std::fprintf(stderr, "EPOCH LOSS NUMERICS MISMATCH\n");
  }

  // --- 2. Full Pretrainer::Run (thread-count identity) -----------------
  std::string reference;
  std::vector<double> run_ms(thread_counts.size());
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    const int t = thread_counts[i];
    std::printf("[run]   %d thread(s)... ", t);
    std::fflush(stdout);
    TrainRun run = RunTraining(corpus, epochs, t);
    run_ms[i] = run.ms;
    std::printf("%.0f ms\n", run.ms);
    if (reference.empty()) reference = run.serialized;
    if (run.serialized != reference) {
      numerics_ok = false;
      std::fprintf(stderr, "RUN IDENTITY MISMATCH at %d thread(s)\n", t);
    }
  }

  // --- 3. Single-graph inference latency ------------------------------
  JobGraph graph = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                              workloads::Engine::kFlink);
  ml::GnnConfig gcfg;
  gcfg.feature_dim = FeatureEncoder::FeatureDim();
  gcfg.hidden_dim = Hidden();
  gcfg.num_layers = 3;
  gcfg.seed = 17;
  ml::GnnEncoder encoder(gcfg);
  legacy::LegacyGnn legacy_encoder(encoder);
  FeatureEncoder fe;
  ml::Matrix features = ml::Matrix::FromRows(fe.EncodeGraph(graph));

  ml::GraphContext ctx = ml::GraphContext::Build(graph);
  ml::Tape tape;
  ml::Matrix var_emb, tape_emb;
  double var_infer_us = 0, tape_infer_us = 0;
  for (int rep = 0; rep < Reps(); ++rep) {
    // Baseline path: exactly what AgnosticEmbeddings did originally —
    // fresh node graph and re-derived adjacency on every call.
    double t0 = NowMs();
    for (int i = 0; i < infer_iters; ++i) {
      legacy::LVar emb = legacy_encoder.ForwardAgnostic(graph, features);
      var_emb = emb->value;
    }
    const double var_us = (NowMs() - t0) * 1000.0 / infer_iters;
    if (rep == 0 || var_us < var_infer_us) var_infer_us = var_us;

    // Tape path: prebuilt GraphContext + one persistent tape.
    double t1 = NowMs();
    for (int i = 0; i < infer_iters; ++i) {
      tape.Reset();
      ml::Tape::Ref emb = encoder.ForwardAgnostic(&tape, ctx, features);
      tape_emb = tape.value(emb);
    }
    const double tape_us = (NowMs() - t1) * 1000.0 / infer_iters;
    if (rep == 0 || tape_us < tape_infer_us) tape_infer_us = tape_us;
  }

  bool infer_ok = var_emb.same_shape(tape_emb);
  if (infer_ok) {
    for (size_t i = 0; i < var_emb.size(); ++i) {
      if (!NumericsMatch(tape_emb.data()[i], var_emb.data()[i])) {
        infer_ok = false;
        break;
      }
    }
  }
  if (!infer_ok) {
    numerics_ok = false;
    std::fprintf(stderr, "INFERENCE NUMERICS MISMATCH\n");
  }
  const double infer_speedup =
      tape_infer_us > 0 ? var_infer_us / tape_infer_us : 0.0;
  std::printf(
      "[infer] baseline %.1f us/graph -> tape %.1f us/graph  (%.2fx, %d "
      "iters)\n",
      var_infer_us, tape_infer_us, infer_speedup, infer_iters);

  std::printf("\ntrain-epoch speedup: %.2fx; inference speedup: %.2fx; "
              "numerics: %s\n",
              epoch_speedup, infer_speedup, numerics_ok ? "ok" : "BAD (BUG)");

  FILE* f = std::fopen("BENCH_mltrain.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"host\": %s,\n"
                 "  \"corpus_records\": %zu,\n"
                 "  \"hidden_dim\": %d,\n"
                 "  \"epoch\": {\"iters\": %d, \"samples\": %d, "
                 "\"var_ms\": %.1f, \"tape_ms\": %.1f},\n"
                 "  \"train_epoch_speedup\": %.3f,\n"
                 "  \"pretrain_run\": [\n",
                 bench::HostInfoJson().c_str(), corpus.size(), Hidden(),
                 epoch_iters, eb.samples, eb.var_ms, eb.tape_ms,
                 epoch_speedup);
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      std::fprintf(f, "    {\"threads\": %d, \"ms\": %.1f}%s\n",
                   thread_counts[i], run_ms[i],
                   i + 1 < thread_counts.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"pretrain_epochs\": %d,\n"
                 "  \"inference_iters\": %d,\n"
                 "  \"var_infer_us\": %.2f,\n"
                 "  \"tape_infer_us\": %.2f,\n"
                 "  \"inference_speedup\": %.3f,\n"
                 "  \"numerics_ok\": %s\n"
                 "}\n",
                 epochs, infer_iters, var_infer_us, tape_infer_us,
                 infer_speedup, numerics_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_mltrain.json\n");
  }
  return numerics_ok ? 0 : 1;
}
