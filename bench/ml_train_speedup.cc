// ML-core speedup: the Var-graph engine (shared_ptr node per op, fresh
// allocations every step) versus the tape engine (arena-allocated records,
// reused value/grad buffers, transpose-free backward kernels).
//
// Three measurements, all over the real training/inference paths:
//
//   1. GNN training-epoch throughput (the refactor's headline metric):
//      epochs of forward + backward over the Nexmark history corpus. The
//      pre-refactor step rebuilds features/targets/parallelism column and
//      re-derives the normalized adjacencies per sample per epoch and runs
//      the Var engine; the tape step uses hoisted per-sample inputs, a
//      cached GraphContext, and one persistent tape. The engine-independent
//      Adam update is excluded from both sides. Losses are checked
//      bit-identical sample by sample.
//   2. Full Pretrainer::Run wall time (GED clustering + training + the
//      shared Adam optimizer) with use_tape=false vs true at 1/4/8 worker
//      threads; serialized bundles must be byte-identical across every
//      engine x thread-count combination — the refactor is a pure
//      performance change.
//   3. Single-graph inference latency: parallelism-agnostic embeddings of
//      one DAG, Var path (re-derives adjacency, allocates a fresh graph per
//      call) vs tape path (prebuilt GraphContext, persistent tape), also
//      checked bit-identical.
//
// Emits BENCH_mltrain.json. Exits 1 only on an identity mismatch.
//
// Environment knobs:
//   ST_BENCH_EPOCH_ITERS  epochs for the epoch-throughput section (default 50).
//   ST_BENCH_REPS         timing repetitions; best-of is reported (default 7).
//   ST_BENCH_EPOCHS       Pretrainer epochs per full run (default 40).
//   ST_BENCH_SAMPLES      history samples per job (default 6).
//   ST_BENCH_INFER        inference iterations per engine (default 2000).
//   ST_BENCH_HIDDEN       GNN hidden width (default 32).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/serialization.h"
#include "ml/gnn.h"
#include "ml/nn.h"
#include "ml/tape.h"
#include "workloads/nexmark.h"

using namespace streamtune;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Hidden() { return EnvInt("ST_BENCH_HIDDEN", 32); }
int Reps() { return EnvInt("ST_BENCH_REPS", 7); }

core::PretrainOptions BenchOptions(int epochs, bool use_tape, int threads) {
  core::PretrainOptions opts;
  opts.k = 2;
  opts.epochs = epochs;
  opts.hidden_dim = Hidden();
  opts.gnn_layers = 3;
  opts.use_tape = use_tape;
  opts.num_threads = threads;
  return opts;
}

std::string SerializedBundle(const core::PretrainedBundle& bundle) {
  std::ostringstream os;
  Status s = core::WriteBundleBody(os, bundle);
  if (!s.ok()) {
    std::fprintf(stderr, "WriteBundleBody failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return os.str();
}

struct TrainRun {
  double ms = 0;
  std::string serialized;
};

TrainRun RunTraining(const std::vector<core::HistoryRecord>& corpus,
                     int epochs, bool use_tape, int threads) {
  core::Pretrainer trainer(BenchOptions(epochs, use_tape, threads));
  TrainRun out;
  double t0 = NowMs();
  auto bundle = trainer.Run(corpus);
  out.ms = NowMs() - t0;
  if (!bundle.ok()) {
    std::fprintf(stderr, "Pretrainer::Run failed: %s\n",
                 bundle.status().ToString().c_str());
    std::exit(1);
  }
  out.serialized = SerializedBundle(*bundle);
  return out;
}

ml::Matrix FeatureMatrix(const FeatureEncoder& fe, const JobGraph& g,
                         const std::vector<double>& rates) {
  return ml::Matrix::FromRows(fe.EncodeGraphWithRates(g, rates));
}

ml::Matrix ParallelismColumn(const FeatureEncoder& fe,
                             const std::vector<int>& p) {
  ml::Matrix col(static_cast<int>(p.size()), 1);
  for (size_t i = 0; i < p.size(); ++i) {
    col.at(static_cast<int>(i), 0) = fe.ScaleParallelism(p[i]);
  }
  return col;
}

struct EpochBench {
  double var_ms = 0;
  double tape_ms = 0;
  int samples = 0;
  bool identical = true;
};

// Epoch throughput: the per-sample forward + backward step exactly as the
// two training loops in Pretrainer::Run perform it, minus opt.Step() (Adam
// is shared by both engines and unchanged by the refactor). Both sides run
// against the same frozen weights, so per-sample losses must match bitwise.
EpochBench RunEpochBench(const std::vector<core::HistoryRecord>& corpus,
                         int iters) {
  EpochBench out;
  FeatureEncoder fe;
  ml::GnnConfig gcfg;
  gcfg.feature_dim = FeatureEncoder::FeatureDim();
  gcfg.hidden_dim = Hidden();
  gcfg.num_layers = 3;
  gcfg.seed = 777;
  ml::GnnEncoder encoder(gcfg);
  Rng head_rng(778);
  ml::Mlp head({Hidden(), 16, 1}, ml::Activation::kRelu, &head_rng);

  // Tape-path inputs: prepared once, reused every epoch (what the refactor
  // hoisted out of the epoch loop).
  struct Prepared {
    ml::GraphContext ctx;
    ml::Matrix features, pcol, targets, mask;
    bool any = false;
  };
  std::vector<Prepared> prepared(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    const core::HistoryRecord& rec = corpus[i];
    Prepared& ps = prepared[i];
    ps.ctx = ml::GraphContext::Build(rec.graph);
    ps.features = FeatureMatrix(fe, rec.graph, rec.source_rates);
    ps.pcol = ParallelismColumn(fe, rec.parallelism);
    const int n = rec.graph.num_operators();
    ps.targets = ml::Matrix(n, 1);
    ps.mask = ml::Matrix(n, 1);
    for (int v = 0; v < n; ++v) {
      if (rec.labels[v] >= 0) {
        ps.targets.at(v, 0) = rec.labels[v];
        ps.mask.at(v, 0) = 1.0;
        ps.any = true;
      }
    }
    if (ps.any) ++out.samples;
  }

  std::vector<double> var_losses;
  ml::Tape tape;

  // Reps interleave the two engines and report best-of so a background noise
  // spike on a shared machine cannot skew one side's measurement.
  for (int rep = 0; rep < Reps(); ++rep) {
    // Pre-refactor epoch: rebuild every per-sample input and re-derive the
    // adjacencies each time, then run the Var engine (the verbatim old loop
    // body from Pretrainer::Run).
    double t0 = NowMs();
    for (int it = 0; it < iters; ++it) {
      for (const core::HistoryRecord& rec : corpus) {
        const int n = rec.graph.num_operators();
        ml::Matrix targets(n, 1), mask(n, 1);
        bool any = false;
        for (int v = 0; v < n; ++v) {
          if (rec.labels[v] >= 0) {
            targets.at(v, 0) = rec.labels[v];
            mask.at(v, 0) = 1.0;
            any = true;
          }
        }
        if (!any) continue;
        ml::Var emb = encoder.Forward(
            rec.graph, FeatureMatrix(fe, rec.graph, rec.source_rates),
            ParallelismColumn(fe, rec.parallelism));
        ml::Var logits = head.Forward(emb);
        ml::Var loss = ml::BceWithLogitsMasked(logits, targets, mask);
        ml::Backward(loss);
        if (rep == 0 && it == 0) var_losses.push_back(loss->value.at(0, 0));
      }
    }
    const double var_ms = NowMs() - t0;
    if (rep == 0 || var_ms < out.var_ms) out.var_ms = var_ms;

    // Tape epoch: hoisted inputs + one persistent tape.
    size_t li = 0;
    double t1 = NowMs();
    for (int it = 0; it < iters; ++it) {
      for (const Prepared& ps : prepared) {
        if (!ps.any) continue;
        tape.Reset();
        ml::Tape::Ref emb =
            encoder.Forward(&tape, ps.ctx, ps.features, ps.pcol);
        ml::Tape::Ref logits = head.Forward(&tape, emb);
        ml::Tape::Ref loss =
            tape.BceWithLogitsMasked(logits, &ps.targets, &ps.mask);
        tape.Backward(loss);
        if (rep == 0 && it == 0 &&
            tape.value(loss).at(0, 0) != var_losses[li++]) {
          out.identical = false;
        }
      }
    }
    const double tape_ms = NowMs() - t1;
    if (rep == 0 || tape_ms < out.tape_ms) out.tape_ms = tape_ms;
  }
  return out;
}

}  // namespace

int main() {
  const int epoch_iters = EnvInt("ST_BENCH_EPOCH_ITERS", 50);
  const int epochs = EnvInt("ST_BENCH_EPOCHS", 40);
  const int samples = EnvInt("ST_BENCH_SAMPLES", 6);
  const int infer_iters = EnvInt("ST_BENCH_INFER", 2000);
  const std::vector<int> thread_counts = {1, 4, 8};

  std::vector<JobGraph> jobs;
  for (workloads::NexmarkQuery q : workloads::AllNexmarkQueries()) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  core::HistoryOptions hopts;
  hopts.samples_per_job = samples;
  std::vector<core::HistoryRecord> corpus = core::CollectHistory(jobs, hopts);
  std::printf("corpus: %zu records over %zu jobs (hidden=%d)\n", corpus.size(),
              jobs.size(), Hidden());

  bool identical = true;

  // --- 1. GNN training-epoch throughput -------------------------------
  EpochBench eb = RunEpochBench(corpus, epoch_iters);
  const double epoch_speedup = eb.tape_ms > 0 ? eb.var_ms / eb.tape_ms : 0.0;
  std::printf(
      "[epoch] %d epochs x %d samples: Var %.0f ms -> tape %.0f ms (%.2fx)\n",
      epoch_iters, eb.samples, eb.var_ms, eb.tape_ms, epoch_speedup);
  if (!eb.identical) {
    identical = false;
    std::fprintf(stderr, "EPOCH LOSS IDENTITY MISMATCH\n");
  }

  // --- 2. Full Pretrainer::Run ----------------------------------------
  std::string reference;
  std::vector<double> var_ms(thread_counts.size());
  std::vector<double> tape_ms(thread_counts.size());
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    const int t = thread_counts[i];
    std::printf("[run]   Var engine,  %d thread(s)... ", t);
    std::fflush(stdout);
    TrainRun var_run = RunTraining(corpus, epochs, /*use_tape=*/false, t);
    var_ms[i] = var_run.ms;
    std::printf("%.0f ms\n", var_run.ms);

    std::printf("[run]   tape engine, %d thread(s)... ", t);
    std::fflush(stdout);
    TrainRun tape_run = RunTraining(corpus, epochs, /*use_tape=*/true, t);
    tape_ms[i] = tape_run.ms;
    std::printf("%.0f ms  (%.2fx)\n", tape_run.ms,
                tape_run.ms > 0 ? var_run.ms / tape_run.ms : 0.0);

    if (reference.empty()) reference = var_run.serialized;
    if (var_run.serialized != reference || tape_run.serialized != reference) {
      identical = false;
      std::fprintf(stderr, "RUN IDENTITY MISMATCH at %d thread(s)\n", t);
    }
  }

  // --- 3. Single-graph inference latency ------------------------------
  JobGraph graph = workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                              workloads::Engine::kFlink);
  ml::GnnConfig gcfg;
  gcfg.feature_dim = FeatureEncoder::FeatureDim();
  gcfg.hidden_dim = Hidden();
  gcfg.num_layers = 3;
  gcfg.seed = 17;
  ml::GnnEncoder encoder(gcfg);
  FeatureEncoder fe;
  ml::Matrix features = ml::Matrix::FromRows(fe.EncodeGraph(graph));

  ml::GraphContext ctx = ml::GraphContext::Build(graph);
  ml::Tape tape;
  ml::Matrix var_emb, tape_emb;
  double var_infer_us = 0, tape_infer_us = 0;
  for (int rep = 0; rep < Reps(); ++rep) {
    // Var path: exactly what AgnosticEmbeddings did before the refactor —
    // fresh node graph and re-derived adjacency on every call.
    double t0 = NowMs();
    for (int i = 0; i < infer_iters; ++i) {
      ml::Var emb = encoder.ForwardAgnostic(graph, features);
      var_emb = emb->value;
    }
    const double var_us = (NowMs() - t0) * 1000.0 / infer_iters;
    if (rep == 0 || var_us < var_infer_us) var_infer_us = var_us;

    // Tape path: prebuilt GraphContext + one persistent tape.
    double t1 = NowMs();
    for (int i = 0; i < infer_iters; ++i) {
      tape.Reset();
      ml::Tape::Ref emb = encoder.ForwardAgnostic(&tape, ctx, features);
      tape_emb = tape.value(emb);
    }
    const double tape_us = (NowMs() - t1) * 1000.0 / infer_iters;
    if (rep == 0 || tape_us < tape_infer_us) tape_infer_us = tape_us;
  }

  bool infer_identical = var_emb.same_shape(tape_emb);
  if (infer_identical) {
    for (size_t i = 0; i < var_emb.size(); ++i) {
      if (var_emb.data()[i] != tape_emb.data()[i]) {
        infer_identical = false;
        break;
      }
    }
  }
  if (!infer_identical) {
    identical = false;
    std::fprintf(stderr, "INFERENCE IDENTITY MISMATCH\n");
  }
  const double infer_speedup =
      tape_infer_us > 0 ? var_infer_us / tape_infer_us : 0.0;
  std::printf(
      "[infer] Var %.1f us/graph -> tape %.1f us/graph  (%.2fx, %d iters)\n",
      var_infer_us, tape_infer_us, infer_speedup, infer_iters);

  std::printf("\ntrain-epoch speedup: %.2fx; inference speedup: %.2fx; "
              "bit-identical: %s\n",
              epoch_speedup, infer_speedup, identical ? "yes" : "NO (BUG)");

  FILE* f = std::fopen("BENCH_mltrain.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"corpus_records\": %zu,\n"
                 "  \"hidden_dim\": %d,\n"
                 "  \"epoch\": {\"iters\": %d, \"samples\": %d, "
                 "\"var_ms\": %.1f, \"tape_ms\": %.1f},\n"
                 "  \"train_epoch_speedup\": %.3f,\n"
                 "  \"pretrain_run\": [\n",
                 corpus.size(), Hidden(), epoch_iters, eb.samples, eb.var_ms,
                 eb.tape_ms, epoch_speedup);
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      std::fprintf(
          f,
          "    {\"threads\": %d, \"var_ms\": %.1f, \"tape_ms\": %.1f, "
          "\"speedup\": %.3f}%s\n",
          thread_counts[i], var_ms[i], tape_ms[i],
          tape_ms[i] > 0 ? var_ms[i] / tape_ms[i] : 0.0,
          i + 1 < thread_counts.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"pretrain_epochs\": %d,\n"
                 "  \"inference_iters\": %d,\n"
                 "  \"var_infer_us\": %.2f,\n"
                 "  \"tape_infer_us\": %.2f,\n"
                 "  \"inference_speedup\": %.3f,\n"
                 "  \"identical_results\": %s\n"
                 "}\n",
                 epochs, infer_iters, var_infer_us, tape_infer_us,
                 infer_speedup, identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_mltrain.json\n");
  }
  return identical ? 0 : 1;
}
