// Fig. 9b: offline pre-training cost versus dataset size (google-benchmark
// timing of the full clustering + per-cluster GNN training pipeline).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workloads/random_dag.h"

using namespace streamtune;
using namespace streamtune::bench;

namespace {

std::vector<core::HistoryRecord> CorpusOfSize(int records) {
  // Mix of PQP variants and random DAGs, ~6 samples per job.
  const int samples = 6;
  int jobs_needed = (records + samples - 1) / samples;
  std::vector<JobGraph> jobs;
  int i = 0;
  while (static_cast<int>(jobs.size()) < jobs_needed) {
    jobs.push_back(workloads::BuildPqpJob(
        workloads::PqpTemplate::kThreeWayJoin,
        i % workloads::PqpVariantCount(workloads::PqpTemplate::kThreeWayJoin)));
    if (static_cast<int>(jobs.size()) < jobs_needed) {
      jobs.push_back(workloads::BuildPqpJob(
          workloads::PqpTemplate::kLinear,
          i % workloads::PqpVariantCount(workloads::PqpTemplate::kLinear)));
    }
    ++i;
  }
  core::HistoryOptions opts;
  opts.samples_per_job = samples;
  auto corpus = core::CollectHistory(jobs, opts);
  corpus.resize(records);
  return corpus;
}

void BM_PretrainCost(benchmark::State& state) {
  int records = static_cast<int>(state.range(0));
  auto corpus = CorpusOfSize(records);
  for (auto _ : state) {
    core::PretrainOptions opts;
    opts.k = 2;
    opts.epochs = 15;
    auto bundle = core::Pretrainer(opts).Run(corpus);
    benchmark::DoNotOptimize(bundle);
  }
  state.SetLabel(std::to_string(records) + " records");
}

BENCHMARK(BM_PretrainCost)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nShape check (paper Fig. 9b): pre-training cost grows non-linearly\n"
      "with the dataset size (clustering's pairwise GED work plus more\n"
      "GNN training steps per epoch).\n");
  return 0;
}
