// Fig. 5: distribution of pre-trained dataflow DAGs by number of logical
// operators.

#include <map>

#include "bench_common.h"

using namespace streamtune;

int main() {
  auto jobs = bench::FlinkCorpusJobs();
  std::map<int, int> histogram;
  for (const JobGraph& g : jobs) ++histogram[g.num_operators()];

  TablePrinter table("Fig. 5: distribution of pre-trained dataflow DAGs",
                     {"#operators", "#queries", "bar"});
  for (const auto& [ops, count] : histogram) {
    table.AddRow({std::to_string(ops), std::to_string(count),
                  std::string(count, '#')});
  }
  table.Print();
  std::printf(
      "Shape check (paper Fig. 5): a unimodal mixture concentrated on\n"
      "small DAGs (<= 20 operators), spanning simple chains to multi-join\n"
      "queries.\n");
  return 0;
}
