// Fig. 11a: ablation of the fine-tuned classification model — SVM and
// XGBoost (monotonic) versus a plain neural network (no monotonic
// constraint) — on Nexmark Q3/Q5/Q8: backpressure occurrences and final
// parallelism.

#include "bench_common.h"

using namespace streamtune;
using namespace streamtune::bench;

int main() {
  int schedule = std::min(ScheduleLength(), 12);  // NN retrains are slow
  std::printf("schedule length: %d rate changes per query\n\n", schedule);

  auto corpus = CollectFlinkCorpus();
  auto bundle = Pretrain(std::move(corpus));

  const std::vector<workloads::NexmarkQuery> queries = {
      workloads::NexmarkQuery::kQ3, workloads::NexmarkQuery::kQ5,
      workloads::NexmarkQuery::kQ8};
  struct Variant {
    const char* label;
    core::FineTuneModel model;
  };
  const Variant variants[] = {
      {"SVM", core::FineTuneModel::kSvm},
      {"XGBoost", core::FineTuneModel::kXgboost},
      {"NN", core::FineTuneModel::kNn},
  };

  TablePrinter table("Fig. 11a: fine-tuning model ablation",
                     {"job", "model", "monotonic", "backpressure occurrences",
                      "parallelism @10x"});
  for (auto q : queries) {
    JobGraph job = workloads::BuildNexmarkJob(q, workloads::Engine::kFlink);
    for (const Variant& variant : variants) {
      core::StreamTuneOptions opts;
      opts.model = variant.model;
      opts.nn.epochs = 60;  // keep the NN refits tractable
      core::StreamTuneTuner tuner(bundle, opts);
      ScheduleResult r = RunFlinkSchedule(job, &tuner, schedule);
      table.AddRow({job.name(), variant.label,
                    variant.model == core::FineTuneModel::kNn ? "no" : "yes",
                    std::to_string(r.backpressure_failures),
                    std::to_string(r.parallelism_at_10x)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check (paper Fig. 11a): the monotonic models (SVM, XGBoost)\n"
      "eliminate backpressure; the unconstrained NN sometimes recommends\n"
      "lower degrees but incurs backpressure occurrences, because without\n"
      "the monotonic constraint the minimum-parallelism search over its\n"
      "predictions is unreliable.\n");
  return 0;
}
