// KB nearest-center lookup at scale: bit-sliced index vs linear scan.
//
// The admission path of the KB service assigns every incoming session to
// its nearest corpus cluster by GED. The pre-index implementation is
// graph::DistancesToCenters — one threshold-pruned A* per corpus graph,
// linear in the corpus. This bench sweeps corpus sizes 10^3 -> 10^5
// (10^6 opt-in) of generator-random jobs and measures, per size:
//
//   survival_rate        fraction of columns the two-stage index still had
//                        to verify with GED (evaluated / candidates),
//   ged_calls_avoided    candidates pruned on signature + lower bound,
//   p50/p99 lookup ms    full two-stage Nearest latency per query,
//   speedup              total linear-scan time / total indexed time over
//                        the same query prefix (a throughput ratio),
//   exact_match          the indexed (center, distance) equals the linear
//                        scan's on every compared query — the bit-identity
//                        contract, re-checked on real bench corpora.
//
// At 10^6 the corpus is never materialized: graphs are re-generated from
// per-column seeds on demand (insertion streams one graph at a time, the
// accessor re-builds only the survivors), exercising the index's
// graphs-stay-with-the-caller design at a scale where holding the corpus
// in memory would be the actual bottleneck. The linear baseline is skipped
// there — that is the point.
//
// Environment knobs:
//   ST_BENCH_QUERIES         queries per size for latency stats (default 64)
//   ST_BENCH_LINEAR_QUERIES  queries compared against the linear scan
//                            (default 8; the linear side is the slow one
//                            at 10^5)
//   ST_BENCH_MILLION         1 adds the 10^6 streaming point (default 0)
//   ST_BENCH_GATE            1 enforces the CI gates below, exit 1 on miss
//   ST_GATE_SURVIVAL_PCT     max survival %% at the largest linear size
//                            (default 5)
//   ST_GATE_SPEEDUP          min speedup at the largest linear size
//                            (default 10)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "graph/ged_cache.h"
#include "graph/ged_kmeans.h"
#include "index/nearest_center_index.h"
#include "workloads/random_dag.h"

using namespace streamtune;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic per-column seed; column i regenerates to the same graph
/// whether it is built during insertion or re-built by the accessor.
uint64_t ColumnSeed(uint64_t base, uint64_t i) {
  return base ^ (0x9E3779B97F4A7C15ULL * (i + 1));
}

JobGraph ColumnGraph(uint64_t base, uint64_t i) {
  Rng rng(ColumnSeed(base, i));
  return workloads::GenerateRandomDag(&rng);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t k = static_cast<size_t>(p * (v.size() - 1) + 0.5);
  return v[std::min(k, v.size() - 1)];
}

struct SweepPoint {
  long long corpus = 0;
  bool streamed = false;
  double insert_graphs_per_sec = 0;
  double survival_rate = 0;
  long long ged_calls_avoided = 0;
  double p50_lookup_ms = 0;
  double p99_lookup_ms = 0;
  double indexed_ms_per_query = 0;
  double linear_ms_per_query = 0;  ///< 0 when the linear side was skipped
  double speedup = 0;              ///< 0 when the linear side was skipped
  bool linear_compared = false;
  bool exact_match = true;
};

}  // namespace

int main() {
  const int num_queries = bench::EnvInt("ST_BENCH_QUERIES", 64);
  const int linear_queries = bench::EnvInt("ST_BENCH_LINEAR_QUERIES", 8);
  const bool million = bench::EnvInt("ST_BENCH_MILLION", 0) != 0;
  const uint64_t corpus_seed = 0xC0FFEE;

  std::vector<long long> sizes = {1000, 10000, 100000};
  if (million) sizes.push_back(1000000);

  std::vector<SweepPoint> points;
  for (long long n : sizes) {
    SweepPoint pt;
    pt.corpus = n;
    pt.streamed = n > 100000;

    // Build the index. Up to 10^5 the corpus is materialized (the linear
    // baseline needs it anyway); beyond that insertion streams one graph
    // at a time from its column seed.
    index::NearestCenterIndex idx;
    std::vector<JobGraph> corpus;
    double insert_ms = 0;
    if (!pt.streamed) {
      corpus.reserve(n);
      for (long long i = 0; i < n; ++i) {
        corpus.push_back(ColumnGraph(corpus_seed, i));
      }
      const double t0 = NowMs();
      for (const JobGraph& g : corpus) idx.Insert(g);
      insert_ms = NowMs() - t0;
    } else {
      const double t0 = NowMs();
      for (long long i = 0; i < n; ++i) {
        idx.Insert(ColumnGraph(corpus_seed, i));
      }
      insert_ms = NowMs() - t0;
    }
    pt.insert_graphs_per_sec = insert_ms > 0 ? n / (insert_ms / 1000.0) : 0;

    JobGraph scratch("scratch");
    const index::NearestCenterIndex::GraphAccessor at =
        [&corpus, &scratch, corpus_seed, &pt](int i) -> const JobGraph& {
      if (!pt.streamed) return corpus[i];
      scratch = ColumnGraph(corpus_seed, static_cast<uint64_t>(i));
      return scratch;
    };

    const std::vector<JobGraph> queries =
        workloads::GenerateRandomDags(num_queries, /*seed=*/0xDECAF);

    // Indexed lookups: per-query latency plus the pruning counters.
    graph::GedCache indexed_cache;
    std::vector<double> latency_ms;
    std::vector<index::NearestCenterIndex::NearestResult> indexed_results;
    latency_ms.reserve(queries.size());
    indexed_results.reserve(queries.size());
    long long evaluated = 0;
    for (const JobGraph& q : queries) {
      const double t0 = NowMs();
      indexed_results.push_back(idx.Nearest(q, at, &indexed_cache));
      latency_ms.push_back(NowMs() - t0);
      evaluated += indexed_results.back().evaluated;
    }
    const long long candidates = n * static_cast<long long>(queries.size());
    pt.survival_rate =
        candidates > 0 ? static_cast<double>(evaluated) / candidates : 0;
    pt.ged_calls_avoided = candidates - evaluated;
    pt.p50_lookup_ms = Percentile(latency_ms, 0.50);
    pt.p99_lookup_ms = Percentile(latency_ms, 0.99);
    double total_ms = 0;
    for (double l : latency_ms) total_ms += l;
    pt.indexed_ms_per_query = total_ms / latency_ms.size();

    // Linear baseline on a query prefix (it is the expensive side), with
    // the bit-identity check against the indexed answers.
    if (!pt.streamed) {
      graph::GedCache linear_cache;
      const int compare = std::min<int>(linear_queries,
                                        static_cast<int>(queries.size()));
      double linear_ms = 0;
      for (int qi = 0; qi < compare; ++qi) {
        const double t0 = NowMs();
        const std::vector<double> dist =
            graph::DistancesToCenters(queries[qi], corpus, &linear_cache);
        linear_ms += NowMs() - t0;
        const int linear_idx = static_cast<int>(
            std::min_element(dist.begin(), dist.end()) - dist.begin());
        if (indexed_results[qi].index != linear_idx ||
            std::abs(indexed_results[qi].distance - dist[linear_idx]) >
                1e-9) {
          pt.exact_match = false;
          std::fprintf(stderr,
                       "MISMATCH n=%lld query=%d indexed=(%d, %.6f) "
                       "linear=(%d, %.6f)\n",
                       n, qi, indexed_results[qi].index,
                       indexed_results[qi].distance, linear_idx,
                       dist[linear_idx]);
        }
      }
      pt.linear_compared = compare > 0;
      pt.linear_ms_per_query = compare > 0 ? linear_ms / compare : 0;
      // Fair throughput ratio: both sides total over the SAME queries.
      double indexed_prefix_ms = 0;
      for (int qi = 0; qi < compare; ++qi) indexed_prefix_ms += latency_ms[qi];
      pt.speedup =
          indexed_prefix_ms > 0 ? linear_ms / indexed_prefix_ms : 0;
    }

    points.push_back(pt);
    std::printf(
        "[corpus %7lld%s] insert %9.0f graphs/s | survival %8.5f%% | "
        "avoided %10lld GED calls | p50 %7.3f ms  p99 %7.3f ms | "
        "linear %8.1f ms/query -> %7.1fx%s\n",
        pt.corpus, pt.streamed ? " (streamed)" : "",
        pt.insert_graphs_per_sec, pt.survival_rate * 100.0,
        pt.ged_calls_avoided, pt.p50_lookup_ms, pt.p99_lookup_ms,
        pt.linear_ms_per_query, pt.speedup,
        pt.linear_compared ? (pt.exact_match ? "" : "  MISMATCH (BUG)")
                           : "  (linear skipped)");
  }

  // Headline numbers: the largest size with a linear comparison.
  const SweepPoint* headline = nullptr;
  for (const SweepPoint& pt : points) {
    if (pt.linear_compared) headline = &pt;
  }
  bool exact_all = true;
  for (const SweepPoint& pt : points) exact_all &= pt.exact_match;

  std::printf("\ndispatch: %s\n", index::ActiveIndexDispatch());
  if (headline) {
    std::printf("at %lld graphs: survival %.5f%%, speedup %.1fx, "
                "exactness %s\n",
                headline->corpus, headline->survival_rate * 100.0,
                headline->speedup, exact_all ? "yes" : "NO (BUG)");
  }

  std::ostringstream json;
  json << "{\n  \"host\": " << bench::HostInfoJson() << ",\n"
       << "  \"index_dispatch\": \"" << index::ActiveIndexDispatch()
       << "\",\n"
       << "  \"queries_per_size\": " << num_queries << ",\n"
       << "  \"linear_queries\": " << linear_queries << ",\n"
       << "  \"sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "    {\"corpus\": %lld, \"streamed\": %s, "
        "\"insert_graphs_per_sec\": %.0f, \"survival_rate\": %.7f, "
        "\"ged_calls_avoided\": %lld, \"p50_lookup_ms\": %.4f, "
        "\"p99_lookup_ms\": %.4f, \"indexed_ms_per_query\": %.4f, "
        "\"linear_ms_per_query\": %.4f, \"speedup\": %.2f, "
        "\"linear_compared\": %s, \"exact_match\": %s}%s\n",
        pt.corpus, pt.streamed ? "true" : "false",
        pt.insert_graphs_per_sec, pt.survival_rate, pt.ged_calls_avoided,
        pt.p50_lookup_ms, pt.p99_lookup_ms, pt.indexed_ms_per_query,
        pt.linear_ms_per_query, pt.speedup,
        pt.linear_compared ? "true" : "false",
        pt.exact_match ? "true" : "false",
        i + 1 < points.size() ? "," : "");
    json << line;
  }
  json << "  ],\n";
  if (headline) {
    char tail[192];
    std::snprintf(tail, sizeof(tail),
                  "  \"headline_corpus\": %lld,\n"
                  "  \"headline_survival_rate\": %.7f,\n"
                  "  \"headline_speedup\": %.2f,\n",
                  headline->corpus, headline->survival_rate,
                  headline->speedup);
    json << tail;
  }
  json << "  \"exactness\": " << (exact_all ? "true" : "false") << "\n}\n";
  {
    std::ofstream f("BENCH_kbindex.json", std::ios::trunc);
    f << json.str();
  }
  std::printf("wrote BENCH_kbindex.json\n");

  // Self-enforcing CI gates.
  if (bench::EnvInt("ST_BENCH_GATE", 0) != 0) {
    const double max_survival =
        bench::EnvInt("ST_GATE_SURVIVAL_PCT", 5) / 100.0;
    const double min_speedup = bench::EnvInt("ST_GATE_SPEEDUP", 10);
    int failures = 0;
    if (!exact_all) {
      std::fprintf(stderr, "GATE: exactness violated\n");
      ++failures;
    }
    if (!headline) {
      std::fprintf(stderr, "GATE: no linear-compared size\n");
      ++failures;
    } else {
      if (headline->survival_rate > max_survival) {
        std::fprintf(stderr, "GATE: survival %.5f > %.5f at %lld\n",
                     headline->survival_rate, max_survival,
                     headline->corpus);
        ++failures;
      }
      if (headline->speedup < min_speedup) {
        std::fprintf(stderr, "GATE: speedup %.2f < %.2f at %lld\n",
                     headline->speedup, min_speedup, headline->corpus);
        ++failures;
      }
    }
    if (failures > 0) return 1;
    std::printf("gates: OK (survival <= %.2f%%, speedup >= %.0fx, exact)\n",
                max_survival * 100.0, min_speedup);
  }
  return 0;
}
