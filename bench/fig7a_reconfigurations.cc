// Fig. 7a: average number of reconfigurations per tuning process in
// response to source-rate changes (Flink). ZeroTune always performs exactly
// one reconfiguration by construction, so (as in the paper) the comparison
// focuses on DS2, ContTune and StreamTune.

#include "bench_common.h"

using namespace streamtune;
using namespace streamtune::bench;

int main() {
  int schedule = ScheduleLength();
  std::printf("schedule length: %d rate changes per query "
              "(ST_BENCH_SCHEDULE; paper uses 120)\n\n",
              schedule);

  auto corpus = CollectFlinkCorpus();
  auto bundle = Pretrain(corpus);

  std::vector<JobGraph> jobs;
  for (auto q : workloads::AllNexmarkQueries()) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 7));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 12));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, 20));

  TablePrinter table(
      "Fig. 7a: average reconfigurations per tuning process",
      {"job", "DS2", "ContTune", "StreamTune"});
  double sum_ds2 = 0, sum_ct = 0, sum_st = 0;
  for (const JobGraph& job : jobs) {
    std::vector<std::string> row{job.name()};
    double per_method[3] = {0, 0, 0};
    int idx = 0;
    for (const std::string& method :
         {std::string("DS2"), std::string("ContTune"),
          std::string("StreamTune")}) {
      auto tuner = MakeTuner(method, bundle, nullptr);
      ScheduleResult r = RunFlinkSchedule(job, tuner.get(), schedule);
      per_method[idx++] = r.avg_reconfigurations;
      row.push_back(TablePrinter::Fmt(r.avg_reconfigurations, 2));
    }
    sum_ds2 += per_method[0];
    sum_ct += per_method[1];
    sum_st += per_method[2];
    table.AddRow(row);
  }
  table.Print();
  double n = 8.0;
  std::printf(
      "\nmeans: DS2 %.2f  ContTune %.2f  StreamTune %.2f\n"
      "StreamTune vs ContTune reduction: %.1f%%\n",
      sum_ds2 / n, sum_ct / n, sum_st / n,
      100.0 * (1.0 - (sum_st / n) / (sum_ct / n)));
  std::printf(
      "Shape check (paper Fig. 7a): StreamTune needs the fewest\n"
      "reconfigurations, ContTune is second, DS2 needs significantly more\n"
      "(no historical knowledge + linearity assumption). The paper reports\n"
      "up to a 29.6%% reduction vs ContTune on PQP Linear.\n");
  return 0;
}
