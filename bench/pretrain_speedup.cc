// Offline pre-training pipeline speedup: serial/uncached baseline (the
// pre-concurrency pipeline) versus the thread-pool + GED-memo pipeline.
//
// Measures the GED-dominated offline phase the paper benchmarks in Fig. 9b:
// SelectKByElbow over [2, 6] followed by the final ClusterDags at the chosen
// k, on a >= 60-graph corpus (all 56 PQP variants + random DAGs). Verifies
// the optimized run is bit-identical to the baseline (same assignments,
// centers and selected k) and emits BENCH_pretrain.json so the perf
// trajectory is tracked across PRs.
//
// Environment knobs:
//   ST_BENCH_THREADS  thread count for the parallel run (default 4).
//   ST_BENCH_GRAPHS   corpus size (default 64, minimum 60 enforced).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "graph/ged_cache.h"
#include "graph/ged_kmeans.h"
#include "workloads/pqp.h"
#include "workloads/random_dag.h"

using namespace streamtune;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunOutcome {
  double elbow_ms = 0;
  double cluster_ms = 0;
  int k = 0;
  graph::KMeansResult clustering;
  graph::GedCache::Stats elbow_stats;
};

RunOutcome RunPipeline(const std::vector<JobGraph>& corpus, int num_threads,
                       bool use_cache) {
  RunOutcome out;
  graph::GedCache cache;
  graph::KMeansOptions opts;
  opts.num_threads = num_threads;
  opts.use_cache = use_cache;
  if (use_cache) opts.cache = &cache;

  double t0 = NowMs();
  auto k = graph::SelectKByElbow(corpus, 2, 6, opts);
  out.elbow_ms = NowMs() - t0;
  if (!k.ok()) {
    std::fprintf(stderr, "SelectKByElbow failed: %s\n",
                 k.status().ToString().c_str());
    std::exit(1);
  }
  out.k = *k;
  out.elbow_stats = cache.stats();

  opts.k = *k;
  t0 = NowMs();
  auto clustering = graph::ClusterDags(corpus, opts);
  out.cluster_ms = NowMs() - t0;
  if (!clustering.ok()) {
    std::fprintf(stderr, "ClusterDags failed: %s\n",
                 clustering.status().ToString().c_str());
    std::exit(1);
  }
  out.clustering = *clustering;
  return out;
}

}  // namespace

int main() {
  const int threads = EnvInt("ST_BENCH_THREADS", 4);
  const int target = std::max(60, EnvInt("ST_BENCH_GRAPHS", 64));

  // Corpus: every PQP variant (8 + 16 + 32 = 56) topped up with random
  // DAGs to the target size — the structural mixture of Fig. 5.
  std::vector<JobGraph> corpus = workloads::AllPqpJobs();
  workloads::RandomDagConfig rcfg;
  rcfg.max_sources = 2;
  rcfg.max_chain_length = 2;
  Rng rng(2024);
  int extra = 0;
  while (static_cast<int>(corpus.size()) < target) {
    corpus.push_back(workloads::GenerateRandomDag(&rng, rcfg));
    corpus.back().set_name("random-" + std::to_string(extra++));
  }
  std::printf("corpus: %zu graphs; parallel run: %d threads\n", corpus.size(),
              threads);

  std::printf("[1/2] serial baseline (1 thread, no cache)...\n");
  RunOutcome serial = RunPipeline(corpus, 1, /*use_cache=*/false);
  std::printf("      elbow %.0f ms + final clustering %.0f ms (k = %d)\n",
              serial.elbow_ms, serial.cluster_ms, serial.k);

  std::printf("[2/2] optimized (%d threads, GED memo cache)...\n", threads);
  RunOutcome parallel = RunPipeline(corpus, threads, /*use_cache=*/true);
  std::printf("      elbow %.0f ms + final clustering %.0f ms (k = %d)\n",
              parallel.elbow_ms, parallel.cluster_ms, parallel.k);

  const bool identical =
      serial.k == parallel.k &&
      serial.clustering.assignment == parallel.clustering.assignment &&
      serial.clustering.center_indices == parallel.clustering.center_indices;

  const double serial_ms = serial.elbow_ms + serial.cluster_ms;
  const double parallel_ms = parallel.elbow_ms + parallel.cluster_ms;
  const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0;
  const graph::GedCache::Stats& st = parallel.elbow_stats;

  std::printf(
      "\nspeedup: %.2fx (%.0f ms -> %.0f ms), elbow cache hit rate %.1f%% "
      "(%llu hits / %llu misses), results identical: %s\n",
      speedup, serial_ms, parallel_ms, 100.0 * st.HitRate(),
      static_cast<unsigned long long>(st.hits),
      static_cast<unsigned long long>(st.misses),
      identical ? "yes" : "NO (BUG)");

  FILE* f = std::fopen("BENCH_pretrain.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"host\": %s,\n"
        "  \"corpus_graphs\": %zu,\n"
        "  \"threads\": %d,\n"
        "  \"selected_k\": %d,\n"
        "  \"serial_elbow_ms\": %.1f,\n"
        "  \"serial_cluster_ms\": %.1f,\n"
        "  \"parallel_elbow_ms\": %.1f,\n"
        "  \"parallel_cluster_ms\": %.1f,\n"
        "  \"serial_total_ms\": %.1f,\n"
        "  \"parallel_total_ms\": %.1f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"elbow_cache_hits\": %llu,\n"
        "  \"elbow_cache_misses\": %llu,\n"
        "  \"elbow_cache_hit_rate\": %.4f,\n"
        "  \"identical_results\": %s\n"
        "}\n",
        bench::HostInfoJson().c_str(), corpus.size(), threads, parallel.k,
        serial.elbow_ms,
        serial.cluster_ms, parallel.elbow_ms, parallel.cluster_ms, serial_ms,
        parallel_ms, speedup, static_cast<unsigned long long>(st.hits),
        static_cast<unsigned long long>(st.misses), st.HitRate(),
        identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_pretrain.json\n");
  }
  return identical ? 0 : 1;
}
