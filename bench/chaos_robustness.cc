// Chaos robustness sweep: drive all four tuners through fault plans of
// increasing intensity and record convergence rate, reconfiguration
// overhead and adaptation-time overhead relative to the fault-free run.
// Emits BENCH_chaos.json so the robustness trajectory is tracked across
// PRs. A run "converges" when the tuning process returns ok() AND the
// underlying (fault-free view of the) job ends without severe backpressure.
//
// Fault plans: deploy-failure and metric-dropout probability = rate,
// straggler probability = rate / 2 (the standard plan at rate 0.10).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/chaos_engine.h"
#include "sim/metrics_sanitizer.h"

using namespace streamtune;
using namespace streamtune::bench;

namespace {

struct Cell {
  int runs = 0;
  int ok = 0;
  int converged = 0;  // ok() and no severe backpressure on the inner engine
  double reconfigs = 0;
  double minutes = 0;
  int faults_survived = 0;
  int retries = 0;
  int rollbacks = 0;

  double ConvergenceRate() const {
    return runs > 0 ? static_cast<double>(converged) / runs : 0;
  }
  double AvgReconfigs() const { return ok > 0 ? reconfigs / ok : 0; }
  double AvgMinutes() const { return ok > 0 ? minutes / ok : 0; }
};

}  // namespace

int main() {
  const std::vector<double> kRates = {0.0, 0.05, 0.10, 0.20};
  const std::vector<std::string> kMethods = {"DS2", "ContTune", "ZeroTune",
                                             "StreamTune"};
  const std::vector<uint64_t> kSeeds = {1, 2, 3};

  auto corpus = CollectFlinkCorpus();
  auto bundle = Pretrain(corpus);
  auto zerotune = TrainZeroTune(corpus);  // trained once, reused

  std::vector<JobGraph> jobs;
  jobs.push_back(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ3,
                                            workloads::Engine::kFlink));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 9));

  bool all_ok = true;
  std::vector<std::vector<Cell>> cells(kMethods.size(),
                                       std::vector<Cell>(kRates.size()));

  for (size_t mi = 0; mi < kMethods.size(); ++mi) {
    const std::string& method = kMethods[mi];
    for (size_t ri = 0; ri < kRates.size(); ++ri) {
      const double rate = kRates[ri];
      Cell& cell = cells[mi][ri];
      for (const JobGraph& job : jobs) {
        for (uint64_t seed : kSeeds) {
          auto inner = MakeFlinkEngine(job, seed);
          sim::FaultPlan plan;
          plan.seed = 1000 * seed + static_cast<uint64_t>(100 * rate);
          plan.deploy_failure_prob = rate;
          plan.measure_dropout_prob = rate;
          plan.straggler_prob = rate / 2;
          std::unique_ptr<sim::ChaosEngine> chaos;
          sim::StreamEngine* engine = inner.get();
          if (!plan.Empty()) {
            chaos = std::make_unique<sim::ChaosEngine>(inner.get(), plan);
            engine = chaos.get();
          }

          std::vector<int> ones(job.num_operators(), 1);
          if (!sim::DeployWithRetry(engine, ones, RetryOptions{}).ok()) {
            ++cell.runs;
            all_ok = false;
            continue;
          }
          engine->ScaleAllSources(8.0);

          baselines::Tuner* tuner = zerotune.get();
          std::unique_ptr<baselines::Tuner> fresh;
          if (method != "ZeroTune") {
            fresh = MakeTuner(method, bundle, nullptr);
            tuner = fresh.get();
          }

          ++cell.runs;
          auto outcome = tuner->Tune(engine);
          if (!outcome.ok()) {
            std::fprintf(stderr, "%s failed at rate %.2f seed %llu: %s\n",
                         method.c_str(), rate,
                         static_cast<unsigned long long>(seed),
                         outcome.status().ToString().c_str());
            all_ok = false;
            continue;
          }
          ++cell.ok;
          cell.reconfigs += outcome->reconfigurations;
          cell.minutes += outcome->tuning_minutes;
          cell.faults_survived += outcome->faults_survived;
          cell.retries += outcome->retries;
          cell.rollbacks += outcome->rollbacks;
          auto metrics = inner->Measure();  // fault-free view
          if (metrics.ok() && !metrics->severe_backpressure) ++cell.converged;
        }
      }
    }
  }

  TablePrinter table("chaos robustness sweep (convergence rate | avg "
                     "reconfigs | faults survived)",
                     {"method", "0%", "5%", "10%", "20%"});
  for (size_t mi = 0; mi < kMethods.size(); ++mi) {
    std::vector<std::string> row{kMethods[mi]};
    for (size_t ri = 0; ri < kRates.size(); ++ri) {
      const Cell& c = cells[mi][ri];
      row.push_back(TablePrinter::Fmt(100 * c.ConvergenceRate(), 0) + "% | " +
                    TablePrinter::Fmt(c.AvgReconfigs(), 1) + " | " +
                    std::to_string(c.faults_survived));
    }
    table.AddRow(row);
  }
  table.Print();

  FILE* f = std::fopen("BENCH_chaos.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"host\": %s,\n  \"cells\": [\n",
                 bench::HostInfoJson().c_str());
    bool first = true;
    for (size_t mi = 0; mi < kMethods.size(); ++mi) {
      const Cell& base = cells[mi][0];
      for (size_t ri = 0; ri < kRates.size(); ++ri) {
        const Cell& c = cells[mi][ri];
        const double reconfig_overhead =
            base.AvgReconfigs() > 0 ? c.AvgReconfigs() / base.AvgReconfigs()
                                    : 0;
        const double minutes_overhead =
            base.AvgMinutes() > 0 ? c.AvgMinutes() / base.AvgMinutes() : 0;
        std::fprintf(
            f,
            "%s    {\"method\": \"%s\", \"fault_rate\": %.2f, \"runs\": %d, "
            "\"ok\": %d, \"convergence_rate\": %.3f, "
            "\"avg_reconfigurations\": %.2f, \"reconfig_overhead\": %.3f, "
            "\"avg_tuning_minutes\": %.1f, \"minutes_overhead\": %.3f, "
            "\"faults_survived\": %d, \"retries\": %d, \"rollbacks\": %d}",
            first ? "" : ",\n", kMethods[mi].c_str(), kRates[ri], c.runs,
            c.ok, c.ConvergenceRate(), c.AvgReconfigs(), reconfig_overhead,
            c.AvgMinutes(), minutes_overhead, c.faults_survived, c.retries,
            c.rollbacks);
        first = false;
      }
    }
    std::fprintf(f, "\n  ],\n  \"all_ok\": %s\n}\n",
                 all_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_chaos.json\n");
  }

  std::printf(
      "\nShape check: every tuner must finish ok() at every fault rate "
      "(bounded fault bursts vs. a larger retry budget), and hardened "
      "StreamTune should stay backpressure-free without blowing its "
      "fault-free reconfiguration budget.\n");
  return all_ok ? 0 : 1;
}
