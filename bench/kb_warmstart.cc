// Knowledge-base warm-start benchmark.
//
// Part 1 — recommendation quality: tune every Nexmark query cold (KB holds
// only the pre-training corpus), admit the converged session, then tune the
// same query again warm (the KB seeds the job's own fine-tune feedback).
// The paper's thesis is that learning from the past cuts the number of
// reconfigurations needed to reach the target rate; the JSON records the
// cold-vs-warm comparison per query.
//
// Part 2 — multi-job tuning throughput: N threads run tune+admit sessions
// concurrently against one KbService (snapshot-isolated reads, serialized
// admissions) and we report sessions/second and the final KB version.
//
// Emits BENCH_kb.json.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "kb/kb_service.h"

using namespace streamtune;
using namespace streamtune::bench;

namespace {

struct SessionStats {
  bool ok = false;
  int reconfigurations = 0;
  double tuning_minutes = 0;
  int total_parallelism = 0;
};

/// One tune+admit session for `job` against the service's current snapshot.
SessionStats RunSession(kb::KbService* service, const JobGraph& job,
                        uint64_t seed, double rate, bool admit) {
  SessionStats stats;
  auto engine = MakeFlinkEngine(job, seed);
  std::vector<int> ones(job.num_operators(), 1);
  if (!engine->Deploy(ones).ok()) return stats;
  engine->ScaleAllSources(rate);

  auto tuner = service->Snapshot()->NewTuner(job.name());
  auto outcome = tuner->Tune(engine.get());
  if (!outcome.ok()) {
    std::fprintf(stderr, "tune %s failed: %s\n", job.name().c_str(),
                 outcome.status().ToString().c_str());
    return stats;
  }
  stats.ok = true;
  stats.reconfigurations = outcome->reconfigurations;
  stats.tuning_minutes = outcome->tuning_minutes;
  stats.total_parallelism = outcome->total_parallelism;
  if (!admit) return stats;

  kb::AdmissionRecord rec;
  rec.record.graph = job;
  rec.record.parallelism = engine->parallelism();
  rec.record.source_rates = engine->current_source_rates();
  auto metrics = engine->Measure();
  if (!metrics.ok()) {
    stats.ok = false;
    return stats;
  }
  rec.record.labels = core::LabelBottlenecks(job, *metrics);
  rec.record.job_cost = core::JobCost(*metrics);
  rec.record.backpressure = metrics->job_backpressure;
  rec.feedback = tuner->FeedbackFor(job.name());
  auto admitted = service->Admit(rec);
  if (!admitted.ok()) {
    std::fprintf(stderr, "admit %s failed: %s\n", job.name().c_str(),
                 admitted.status().ToString().c_str());
    stats.ok = false;
  }
  return stats;
}

}  // namespace

int main() {
  const double kRate = 8.0;
  auto corpus = CollectFlinkCorpus();
  auto bundle = Pretrain(corpus);
  auto service = kb::KbService::FromBundle(bundle);

  std::vector<JobGraph> queries;
  for (auto q : workloads::AllNexmarkQueries()) {
    queries.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }

  bool all_ok = true;

  // Part 1: cold session (admitting) then warm session per query.
  std::vector<SessionStats> cold(queries.size()), warm(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    cold[i] = RunSession(service.get(), queries[i], 7, kRate, true);
    warm[i] = RunSession(service.get(), queries[i], 7, kRate, false);
    all_ok = all_ok && cold[i].ok && warm[i].ok;
  }
  double cold_reconfigs = 0, warm_reconfigs = 0;
  double cold_minutes = 0, warm_minutes = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    cold_reconfigs += cold[i].reconfigurations;
    warm_reconfigs += warm[i].reconfigurations;
    cold_minutes += cold[i].tuning_minutes;
    warm_minutes += warm[i].tuning_minutes;
  }
  const double n = static_cast<double>(queries.size());

  TablePrinter table("KB warm start at 8x W_u (reconfigs | minutes)",
                     {"query", "cold", "warm"});
  for (size_t i = 0; i < queries.size(); ++i) {
    table.AddRow({queries[i].name(),
                  std::to_string(cold[i].reconfigurations) + " | " +
                      TablePrinter::Fmt(cold[i].tuning_minutes, 0),
                  std::to_string(warm[i].reconfigurations) + " | " +
                      TablePrinter::Fmt(warm[i].tuning_minutes, 0)});
  }
  table.Print();

  // Part 2: concurrent multi-job tune+admit throughput against one service.
  const int kThreads = 4;
  const int kSessionsPerThread = 2;
  std::vector<int> thread_ok(kThreads, 0);
  auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kSessionsPerThread; ++i) {
          const JobGraph& job = queries[(t + i) % queries.size()];
          uint64_t seed = 100 + static_cast<uint64_t>(t * 10 + i);
          if (RunSession(service.get(), job, seed, kRate, true).ok) {
            ++thread_ok[t];
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  int concurrent_ok = 0;
  for (int t = 0; t < kThreads; ++t) concurrent_ok += thread_ok[t];
  const int concurrent_total = kThreads * kSessionsPerThread;
  all_ok = all_ok && concurrent_ok == concurrent_total;
  const double throughput = seconds > 0 ? concurrent_ok / seconds : 0;

  std::printf(
      "concurrent: %d/%d sessions ok across %d threads in %.1fs "
      "(%.2f sessions/s), kb v%lld\n",
      concurrent_ok, concurrent_total, kThreads, seconds, throughput,
      service->version());

  FILE* f = std::fopen("BENCH_kb.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"host\": %s,\n  \"queries\": [\n",
                 bench::HostInfoJson().c_str());
    for (size_t i = 0; i < queries.size(); ++i) {
      std::fprintf(
          f,
          "%s    {\"query\": \"%s\", \"cold_reconfigurations\": %d, "
          "\"warm_reconfigurations\": %d, \"cold_tuning_minutes\": %.1f, "
          "\"warm_tuning_minutes\": %.1f, \"cold_parallelism\": %d, "
          "\"warm_parallelism\": %d}",
          i == 0 ? "" : ",\n", queries[i].name().c_str(),
          cold[i].reconfigurations, warm[i].reconfigurations,
          cold[i].tuning_minutes, warm[i].tuning_minutes,
          cold[i].total_parallelism, warm[i].total_parallelism);
    }
    std::fprintf(
        f,
        "\n  ],\n"
        "  \"avg_cold_reconfigurations\": %.2f,\n"
        "  \"avg_warm_reconfigurations\": %.2f,\n"
        "  \"avg_cold_tuning_minutes\": %.1f,\n"
        "  \"avg_warm_tuning_minutes\": %.1f,\n"
        "  \"warm_fewer_reconfigurations\": %s,\n"
        "  \"concurrent\": {\"threads\": %d, \"sessions\": %d, \"ok\": %d, "
        "\"seconds\": %.2f, \"sessions_per_second\": %.2f, "
        "\"final_kb_version\": %lld},\n"
        "  \"all_ok\": %s\n}\n",
        cold_reconfigs / n, warm_reconfigs / n, cold_minutes / n,
        warm_minutes / n, warm_reconfigs <= cold_reconfigs ? "true" : "false",
        kThreads, concurrent_total, concurrent_ok, seconds, throughput,
        service->version(), all_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_kb.json\n");
  }

  std::printf(
      "\nShape check: every session must finish ok(), and the warm runs "
      "(seeded with the job's own admitted feedback) should reach the "
      "target rate with no more reconfigurations than the cold runs.\n");
  return all_ok ? 0 : 1;
}
