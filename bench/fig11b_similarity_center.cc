// Fig. 11b: processing time of similarity-center computation — direct
// (zero-heuristic) exact GED versus the AStar+-LSa-style bounded search —
// as the number of clustered DAGs grows. Uses google-benchmark.
//
// ST_BENCH_MAX_DAGS (default 100) caps the largest dataset; the paper's
// largest point is 400 DAGs, where it reports a 99.65% time reduction.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/similarity.h"
#include "workloads/random_dag.h"

using namespace streamtune;
using namespace streamtune::bench;

namespace {

std::vector<JobGraph> Cluster(int n) {
  // A structurally coherent cluster (what k-means hands to the similarity-
  // center step): same family, modest size.
  workloads::RandomDagConfig cfg;
  cfg.min_sources = 1;
  cfg.max_sources = 2;
  cfg.max_chain_length = 2;
  return workloads::GenerateRandomDags(n, 31337, cfg);
}

void BM_SimilarityCenterDirectGed(benchmark::State& state) {
  auto dags = Cluster(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    int center =
        graph::SimilarityCenter(dags, 5.0, graph::SearchMethod::kDirectGed);
    benchmark::DoNotOptimize(center);
  }
}

void BM_SimilarityCenterAStarLsa(benchmark::State& state) {
  auto dags = Cluster(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    int center =
        graph::SimilarityCenter(dags, 5.0, graph::SearchMethod::kAStarLsa);
    benchmark::DoNotOptimize(center);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int max_dags = EnvInt("ST_BENCH_MAX_DAGS", 100);
  for (int n = 25; n <= max_dags; n *= 2) {
    benchmark::RegisterBenchmark("BM_SimilarityCenterDirectGed",
                                 BM_SimilarityCenterDirectGed)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  for (int n = 25; n <= max_dags; n *= 2) {
    benchmark::RegisterBenchmark("BM_SimilarityCenterAStarLsa",
                                 BM_SimilarityCenterAStarLsa)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nShape check (paper Fig. 11b): direct GED computation time grows\n"
      "steeply with the number of DAGs while the AStar+-LSa bounded search\n"
      "stays low (99.65%% reduction at 400 DAGs in the paper). Set\n"
      "ST_BENCH_MAX_DAGS=400 to reproduce the paper's largest point.\n");
  return 0;
}
