// Control-plane scale benchmark: 1k / 10k / 100k concurrent tuning
// processes against one KbService, with and without a fleet-wide chaos
// storm. Reports decisions/sec, decision-latency percentiles, shed /
// quarantine counts, degraded-vs-healthy convergence, and verifies the
// determinism contract: jobs the storm does not touch must be bit-identical
// to a chaos-free run.
//
// Environment knobs:
//   ST_BENCH_CP_MAX_JOBS      largest fleet size (default 100000; the
//                             ladder 1000/10000/100000 is filtered to it)
//   ST_BENCH_CP_FULL          full StreamTune admission capacity (64)
//   ST_BENCH_CP_CHAOS_PCT     storm fraction in percent (30)
//   ST_BENCH_CP_IDENTITY_MAX  largest size to double-run for the
//                             bit-identity check (default 10000)
//   ST_BENCH_CP_MIN_DPS       regression gate: decisions/sec floor (0=off)
//   ST_BENCH_CP_MAX_P99_MS    regression gate: p99 ceiling (0=off)
//
// Exit code 1 when a gate fails or healthy jobs diverge under chaos.

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "controlplane/control_plane.h"
#include "sim/chaos_engine.h"
#include "workloads/nexmark.h"

namespace {

using streamtune::JobGraph;
using streamtune::bench::EnvInt;
using streamtune::bench::MakeFlinkEngine;
namespace cp = streamtune::controlplane;
namespace sim = streamtune::sim;
namespace kb = streamtune::kb;

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  cp::ControlPlaneReport report;
  std::map<std::int64_t, std::uint64_t> hashes;
};

struct Sweep {
  int jobs = 0;
  bool chaos = false;
  cp::ControlPlaneReport report;
  bool identity_checked = false;
  bool healthy_bit_identical = true;
  int healthy_jobs = 0;
  int faulted_jobs = 0;
};

RunResult RunFleet(const std::shared_ptr<const streamtune::core::PretrainedBundle>& bundle,
                   int jobs, const sim::FleetFaultPlan& plan, int full_capacity) {
  // A fresh service per run pins an identical v0 snapshot, so chaos-on and
  // chaos-off fleets warm-start from the same knowledge.
  std::unique_ptr<kb::KbService> service = kb::KbService::FromBundle(bundle);

  cp::ControlPlaneOptions opts;
  opts.full_admission.capacity = full_capacity;
  opts.wall_clock = [] { return WallSeconds(); };
  opts.streamtune.max_iterations = 8;
  opts.streamtune.warmup_records = 40;
  cp::ControlPlane plane(service.get(), opts);

  const std::vector<JobGraph> catalogue = streamtune::bench::FlinkCorpusJobs();
  std::vector<std::unique_ptr<sim::StreamEngine>> inner(jobs);
  std::vector<std::unique_ptr<sim::ChaosEngine>> wrapped(jobs);
  RunResult result;
  for (int i = 0; i < jobs; ++i) {
    const JobGraph& job = catalogue[i % catalogue.size()];
    inner[i] = MakeFlinkEngine(job, static_cast<uint64_t>(i));
    inner[i]->ScaleAllSources(4.0);
    std::vector<int> ones(job.num_operators(), 1);
    if (!inner[i]->Deploy(ones).ok()) continue;
    wrapped[i] = std::make_unique<sim::ChaosEngine>(inner[i].get(),
                                                    plan.PlanFor(i));
    if (!plane.AddJob(i, wrapped[i].get()).ok()) continue;
  }

  auto report = plane.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "control plane run failed: %s\n",
                 report.status().ToString().c_str());
    return result;
  }
  result.report = *std::move(report);
  for (const cp::JobReport& jr : result.report.job_reports) {
    result.hashes[jr.id] = jr.trajectory_hash;
  }
  return result;
}

void PrintRow(const Sweep& s) {
  const cp::ControlPlaneReport& r = s.report;
  std::printf(
      "%7d jobs chaos=%-3s  %8.0f dec/s  p50 %6.3fms  p99 %6.3fms  "
      "conv %d/%d (clean %d)  shed %d  quar %d  bp %d/%d  kb %lld\n",
      s.jobs, s.chaos ? "on" : "off", r.decisions_per_sec,
      r.p50_decision_ms, r.p99_decision_ms, r.converged, r.jobs,
      r.converged_clean, r.shed_jobs, r.quarantined,
      r.backpressure_engagements, r.backpressure_releases, r.kb_admitted);
}

std::string SweepJson(const Sweep& s) {
  const cp::ControlPlaneReport& r = s.report;
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"jobs\": %d, \"chaos\": %s, \"full_jobs\": %d, "
      "\"shed_jobs\": %d, \"decisions\": %lld, \"decisions_per_sec\": %.0f, "
      "\"p50_decision_ms\": %.4f, \"p99_decision_ms\": %.4f, "
      "\"converged\": %d, \"converged_full\": %d, \"converged_shed\": %d, "
      "\"converged_clean\": %d, \"quarantined\": %d, \"failed\": %d, "
      "\"rounds\": %d, \"backpressure_engagements\": %d, "
      "\"backpressure_releases\": %d, \"kb_admitted\": %lld, "
      "\"kb_dropped\": %lld, \"kb_deferred\": %lld, "
      "\"identity_checked\": %s, \"healthy_jobs\": %d, "
      "\"faulted_jobs\": %d, \"healthy_jobs_bit_identical\": %s}",
      s.jobs, s.chaos ? "true" : "false", r.full_jobs, r.shed_jobs,
      r.decisions, r.decisions_per_sec, r.p50_decision_ms,
      r.p99_decision_ms, r.converged, r.converged_full, r.converged_shed,
      r.converged_clean, r.quarantined, r.failed, r.rounds,
      r.backpressure_engagements, r.backpressure_releases, r.kb_admitted,
      r.kb_dropped, r.kb_deferred, s.identity_checked ? "true" : "false",
      s.healthy_jobs, s.faulted_jobs,
      s.healthy_bit_identical ? "true" : "false");
  return buf;
}

}  // namespace

int main() {
  const int max_jobs = EnvInt("ST_BENCH_CP_MAX_JOBS", 100000);
  const int full_capacity = EnvInt("ST_BENCH_CP_FULL", 64);
  const int chaos_pct = EnvInt("ST_BENCH_CP_CHAOS_PCT", 30);
  const int identity_max = EnvInt("ST_BENCH_CP_IDENTITY_MAX", 10000);
  const int min_dps = EnvInt("ST_BENCH_CP_MIN_DPS", 0);
  const int max_p99_ms = EnvInt("ST_BENCH_CP_MAX_P99_MS", 0);

  auto bundle = streamtune::bench::Pretrain(
      streamtune::bench::CollectFlinkCorpus());

  std::vector<int> sizes;
  for (int s : {1000, 10000, 100000}) {
    if (s <= max_jobs) sizes.push_back(s);
  }
  if (sizes.empty()) sizes.push_back(max_jobs);

  sim::FleetFaultPlan storm;
  storm.fault_fraction = chaos_pct / 100.0;
  sim::FleetFaultPlan calm = storm;
  calm.fault_fraction = 0.0;

  bool ok = true;
  std::vector<Sweep> sweeps;
  for (int jobs : sizes) {
    RunResult off = RunFleet(bundle, jobs, calm, full_capacity);
    Sweep off_sweep;
    off_sweep.jobs = jobs;
    off_sweep.report = off.report;
    PrintRow(off_sweep);

    RunResult on = RunFleet(bundle, jobs, storm, full_capacity);
    Sweep on_sweep;
    on_sweep.jobs = jobs;
    on_sweep.chaos = true;
    on_sweep.report = on.report;
    if (jobs <= identity_max) {
      on_sweep.identity_checked = true;
      for (int i = 0; i < jobs; ++i) {
        if (storm.Faulted(i)) {
          ++on_sweep.faulted_jobs;
          continue;
        }
        ++on_sweep.healthy_jobs;
        if (on.hashes[i] != off.hashes[i]) {
          on_sweep.healthy_bit_identical = false;
        }
      }
      if (!on_sweep.healthy_bit_identical) {
        std::fprintf(stderr,
                     "FAIL: healthy jobs diverged under chaos at %d jobs\n",
                     jobs);
        ok = false;
      }
    }
    PrintRow(on_sweep);

    for (const Sweep& s : {off_sweep, on_sweep}) {
      if (min_dps > 0 && s.report.decisions_per_sec < min_dps) {
        std::fprintf(stderr, "FAIL: %.0f dec/s below floor %d (%d jobs)\n",
                     s.report.decisions_per_sec, min_dps, s.jobs);
        ok = false;
      }
      if (max_p99_ms > 0 && s.report.p99_decision_ms > max_p99_ms) {
        std::fprintf(stderr, "FAIL: p99 %.3fms above ceiling %dms (%d jobs)\n",
                     s.report.p99_decision_ms, max_p99_ms, s.jobs);
        ok = false;
      }
      if (s.report.quarantined + s.report.converged + s.report.failed !=
          s.report.jobs) {
        std::fprintf(stderr, "FAIL: %d jobs unaccounted for (%d jobs)\n",
                     s.report.jobs - s.report.converged -
                         s.report.quarantined - s.report.failed,
                     s.jobs);
        ok = false;
      }
    }
    sweeps.push_back(off_sweep);
    sweeps.push_back(on_sweep);
  }

  FILE* f = std::fopen("BENCH_controlplane.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"host\": %s,\n  \"sweeps\": [\n",
                 streamtune::bench::HostInfoJson().c_str());
    for (size_t i = 0; i < sweeps.size(); ++i) {
      std::fprintf(f, "%s%s", SweepJson(sweeps[i]).c_str(),
                   i + 1 < sweeps.size() ? ",\n" : "\n");
    }
    std::fprintf(f, "  ],\n  \"gates_ok\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);
  }
  return ok ? 0 : 1;
}
