// Ablation (paper Sec. VII "Live Reconfiguration"): stop-and-restart
// redeployment versus live, API-driven parallelism changes. The tuning
// *decisions* are identical — only the per-deployment cost changes — so the
// experiment quantifies how much of StreamTune's adaptation time (Fig. 7b)
// is stabilization waiting that live reconfiguration would eliminate.

#include "bench_common.h"

using namespace streamtune;
using namespace streamtune::bench;

namespace {

std::unique_ptr<sim::StreamEngine> EngineWithMode(const JobGraph& job,
                                                  bool live) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  sim::SimConfig cfg;
  cfg.live_reconfiguration = live;
  return std::make_unique<sim::FlinkEngine>(job, model, cfg);
}

}  // namespace

int main() {
  auto corpus = CollectFlinkCorpus();
  auto bundle = Pretrain(std::move(corpus));

  std::vector<JobGraph> jobs;
  jobs.push_back(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                            workloads::Engine::kFlink));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 12));

  TablePrinter table(
      "Ablation: stop-and-restart vs live reconfiguration (StreamTune)",
      {"job", "mode", "avg tuning minutes/change", "max tuning minutes",
       "avg reconfigs"});
  for (const JobGraph& job : jobs) {
    for (int live = 0; live <= 1; ++live) {
      core::StreamTuneTuner tuner(bundle);
      ScheduleResult r = RunSchedule(
          job, &tuner,
          [live](const JobGraph& g) { return EngineWithMode(g, live); }, 20);
      double total = 0, max_m = 0;
      for (double m : r.tuning_minutes) {
        total += m;
        max_m = std::max(max_m, m);
      }
      table.AddRow({job.name(), live ? "live" : "stop-and-restart",
                    TablePrinter::Fmt(total / r.tuning_minutes.size(), 1),
                    TablePrinter::Fmt(max_m, 0),
                    TablePrinter::Fmt(r.avg_reconfigurations, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nClaim (paper Sec. VII): with operator-level RESTful reconfiguration\n"
      "(as deployed at ByteDance), the 10-minute stop-and-restart\n"
      "stabilization wait per deployment collapses to ~1 minute, cutting\n"
      "adaptation time by ~10x while the recommendations are unchanged.\n");
  return 0;
}
