// Shared experiment plumbing for the per-table/per-figure bench binaries.
//
// Each bench binary reproduces one table or figure from the paper's
// evaluation. They share the same construction of engines, corpora,
// pre-trained bundles and schedule-driven tuning runs, defined here.
//
// Environment knobs:
//   ST_BENCH_SCHEDULE  number of source-rate changes per query (default 40;
//                      the paper's full periodic pattern is 120).
//   ST_BENCH_SAMPLES   history samples per job for pre-training corpora
//                      (default 30).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/conttune.h"
#include "baselines/ds2.h"
#include "baselines/tuner.h"
#include "baselines/zerotune.h"
#include "common/table_printer.h"
#include "core/history.h"
#include "core/pretrain.h"
#include "core/streamtune_tuner.h"
#include "sim/engine.h"
#include "timelysim/timely_simulator.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"
#include "workloads/rate_schedule.h"

namespace streamtune::bench {

/// Reads an integer environment knob with a default.
int EnvInt(const char* name, int fallback);

/// Host provenance for BENCH_*.json files: CPU features, the kernel
/// dispatch the process resolved at startup, and the thread count. A JSON
/// object, e.g. {"avx2": true, "fma": true, "kernel_dispatch": "avx2-fma",
/// "hardware_concurrency": 8} — perf numbers are only comparable across
/// runs with matching host objects.
std::string HostInfoJson();

/// Number of rate changes driven per query in schedule experiments.
int ScheduleLength();

/// Fresh Flink-like engine for `job` with the workload-matched calibration.
std::unique_ptr<sim::StreamEngine> MakeFlinkEngine(const JobGraph& job,
                                                   uint64_t seed = 7);
/// Fresh Timely-like engine for `job`.
std::unique_ptr<timelysim::TimelySimulator> MakeTimelyEngine(
    const JobGraph& job, uint64_t seed = 7);

/// The jobs used to build the Flink pre-training corpus: all Nexmark
/// queries plus a slice of PQP variants (mirrors Fig. 5's mixture).
std::vector<JobGraph> FlinkCorpusJobs();

/// Collects the Flink pre-training corpus (paper defaults).
std::vector<core::HistoryRecord> CollectFlinkCorpus();

/// Collects a Timely pre-training corpus over Q3/Q5/Q8.
std::vector<core::HistoryRecord> CollectTimelyCorpus();

/// Pre-trains a bundle over `corpus` (clustered by default).
std::shared_ptr<core::PretrainedBundle> Pretrain(
    std::vector<core::HistoryRecord> corpus, bool use_clustering = true,
    int k = 0);

/// Trains a ZeroTune cost model from history records.
std::unique_ptr<baselines::ZeroTuneTuner> TrainZeroTune(
    const std::vector<core::HistoryRecord>& corpus);

/// Builds one tuner per method. StreamTune instances share `bundle`.
std::unique_ptr<baselines::Tuner> MakeTuner(
    const std::string& method,
    std::shared_ptr<core::PretrainedBundle> bundle,
    const std::vector<core::HistoryRecord>* zerotune_corpus = nullptr);

/// Aggregate results of driving one tuner through the rate schedule on one
/// job (one simulated engine instance).
struct ScheduleResult {
  std::string method;
  std::string job;
  /// Final total parallelism after the last tuning process at 10 W_u.
  int parallelism_at_10x = 0;
  /// Ground-truth minimal total at 10 W_u.
  int oracle_at_10x = 0;
  /// Mean reconfigurations per tuning process.
  double avg_reconfigurations = 0;
  /// Tuning processes that ended with sustained backpressure (Table III).
  int backpressure_failures = 0;
  /// Virtual tuning minutes per process (stabilization waits).
  std::vector<double> tuning_minutes;
  /// Rate multiplier per process, aligned with tuning_minutes.
  std::vector<double> rate_multipliers;
  /// Mean CPU utilization across operators after each tuning process.
  std::vector<double> cpu_utilization;
};

/// Runs `tuner` through `schedule_length` rate changes of the periodic
/// pattern on a fresh engine for `job`, ending with one extra process at
/// 10 W_u (the Fig. 6 / Fig. 8a measurement point).
ScheduleResult RunSchedule(const JobGraph& job, baselines::Tuner* tuner,
                           const std::function<std::unique_ptr<
                               sim::StreamEngine>(const JobGraph&)>& factory,
                           int schedule_length);

/// Convenience overload on the Flink engine.
ScheduleResult RunFlinkSchedule(const JobGraph& job, baselines::Tuner* tuner,
                                int schedule_length);

}  // namespace streamtune::bench
