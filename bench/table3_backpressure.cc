// Table III: frequency of backpressure occurrences — tuning processes that
// ended with sustained, unresolved backpressure — per method and query,
// across the periodic source-rate pattern (Flink).

#include "bench_common.h"

using namespace streamtune;
using namespace streamtune::bench;

int main() {
  int schedule = ScheduleLength();
  std::printf("schedule length: %d rate changes per query "
              "(ST_BENCH_SCHEDULE; paper uses 120)\n\n",
              schedule);

  auto corpus = CollectFlinkCorpus();
  auto bundle = Pretrain(corpus);
  auto zerotune = TrainZeroTune(corpus);
  auto streamtune = MakeTuner("StreamTune", bundle);

  std::vector<JobGraph> jobs;
  for (auto q : workloads::AllNexmarkQueries()) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 7));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 12));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, 20));

  TablePrinter table("Table III: backpressure occurrences during tuning",
                     {"method", "Q1", "Q2", "Q3", "Q5", "Q8", "Linear",
                      "2-way-join", "3-way-join"});
  for (const std::string& method :
       {std::string("DS2"), std::string("ContTune"), std::string("ZeroTune"),
        std::string("StreamTune")}) {
    std::vector<std::string> row{method};
    for (const JobGraph& job : jobs) {
      bool is_pqp = job.name().rfind("pqp-", 0) == 0;
      if (method == "ZeroTune" && !is_pqp) {
        row.push_back("/");
        continue;
      }
      baselines::Tuner* tuner_ptr;
      std::unique_ptr<baselines::Tuner> fresh;
      if (method == "ZeroTune") {
        tuner_ptr = zerotune.get();
      } else if (method == "StreamTune") {
        tuner_ptr = streamtune.get();
      } else {
        fresh = MakeTuner(method, bundle);
        tuner_ptr = fresh.get();
      }
      ScheduleResult r = RunFlinkSchedule(job, tuner_ptr, schedule);
      row.push_back(std::to_string(r.backpressure_failures));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nShape check (paper Table III): StreamTune and ZeroTune report 0\n"
      "occurrences everywhere; DS2 and ContTune trigger backpressure\n"
      "multiple times, concentrated on the join-heavy queries (their noisy\n"
      "useful-time measurements overestimate processing ability).\n");
  return 0;
}
