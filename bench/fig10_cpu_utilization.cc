// Fig. 10: CPU utilization dynamics while StreamTune tunes parallelism
// across reconfiguration iterations, with periodic source-rate changes
// (vertical markers in the paper's plot; '|' rows here).

#include "bench_common.h"

using namespace streamtune;
using namespace streamtune::bench;

namespace {

void Trace(const JobGraph& job,
           std::shared_ptr<core::PretrainedBundle> bundle) {
  auto engine = MakeFlinkEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  (void)engine->Deploy(ones);
  core::StreamTuneTuner tuner(bundle);

  TablePrinter table(std::string("Fig. 10: CPU utilization during tuning — ") +
                         job.name(),
                     {"event", "rate (x W_u)", "avg CPU util", "bar"});
  auto add_sample = [&](const std::string& tag, double rate) {
    auto m = engine->Measure();
    if (!m.ok()) return;
    double cpu = 0;
    for (const auto& om : m->ops) cpu += om.cpu_load;
    cpu /= static_cast<double>(m->ops.size());
    table.AddRow({tag, TablePrinter::Fmt(rate, 0),
                  TablePrinter::Fmt(100 * cpu, 1) + "%",
                  std::string(static_cast<size_t>(cpu * 40), '#')});
  };

  std::vector<double> rates = {3, 7, 2, 10, 5};
  for (double rate : rates) {
    engine->ScaleAllSources(rate);
    table.AddRow({"-- rate change --", TablePrinter::Fmt(rate, 0), "", ""});
    add_sample("pre-tuning", rate);
    // Drive the tuning process one deployment at a time so the utilization
    // after every reconfiguration iteration is visible.
    int before = engine->deployment_count();
    auto outcome = tuner.Tune(engine.get());
    if (!outcome.ok()) return;
    int deploys = engine->deployment_count() - before;
    add_sample("after tuning (" + std::to_string(deploys) + " deploys)",
               rate);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  auto corpus = CollectFlinkCorpus();
  auto bundle = Pretrain(std::move(corpus));
  Trace(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                   workloads::Engine::kFlink),
        bundle);
  Trace(workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 12),
        bundle);
  std::printf(
      "Shape check (paper Fig. 10): utilization swings across\n"
      "reconfiguration iterations as StreamTune explores parallelism\n"
      "degrees, then settles; complex queries show more adjustment\n"
      "activity around each rate change.\n");
  return 0;
}
