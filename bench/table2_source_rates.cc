// Table II: source-rate units W_u of the evaluated streaming jobs.

#include "bench_common.h"

using namespace streamtune;
using workloads::Engine;
using workloads::NexmarkQuery;

int main() {
  TablePrinter table(
      "Table II: source rate units (records/second)",
      {"job", "bids Flink", "bids Timely", "auctions Flink", "auctions Timely",
       "persons Flink", "persons Timely", "PQP source"});
  auto fmt = [](double v) {
    if (v <= 0) return std::string("/");
    if (v >= 1e6) return TablePrinter::Fmt(v / 1e6, 0) + "M";
    return TablePrinter::Fmt(v / 1e3, v < 1000 ? 2 : 0) + "K";
  };
  struct Row {
    NexmarkQuery q;
    bool bids, auctions, persons;
  };
  const Row rows[] = {
      {NexmarkQuery::kQ1, true, false, false},
      {NexmarkQuery::kQ2, true, false, false},
      {NexmarkQuery::kQ3, false, true, true},
      {NexmarkQuery::kQ5, true, false, false},
      {NexmarkQuery::kQ8, false, true, true},
  };
  for (const Row& r : rows) {
    auto cell = [&](bool used, const char* stream, Engine e) {
      return used ? fmt(workloads::NexmarkRateUnit(r.q, e, stream))
                  : std::string("/");
    };
    table.AddRow({std::string("(Nexmark)") + workloads::NexmarkQueryName(r.q),
                  cell(r.bids, "bids", Engine::kFlink),
                  cell(r.bids, "bids", Engine::kTimely),
                  cell(r.auctions, "auctions", Engine::kFlink),
                  cell(r.auctions, "auctions", Engine::kTimely),
                  cell(r.persons, "persons", Engine::kFlink),
                  cell(r.persons, "persons", Engine::kTimely),
                  "/"});
  }
  for (auto t : {workloads::PqpTemplate::kLinear,
                 workloads::PqpTemplate::kTwoWayJoin,
                 workloads::PqpTemplate::kThreeWayJoin}) {
    table.AddRow({std::string("(PQP)") + workloads::PqpTemplateName(t), "/",
                  "/", "/", "/", "/", "/", fmt(workloads::PqpRateUnit(t))});
  }
  table.Print();
  return 0;
}
