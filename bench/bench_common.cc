#include "bench_common.h"

#include <cstdlib>
#include <sstream>
#include <thread>

#include "ml/cpu_features.h"
#include "ml/matrix.h"
#include "workloads/random_dag.h"

namespace streamtune::bench {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::atoi(v);
}

std::string HostInfoJson() {
  const ml::CpuFeatures f = ml::HostCpuFeatures();
  std::ostringstream os;
  os << "{\"avx2\": " << (f.avx2 ? "true" : "false")
     << ", \"fma\": " << (f.fma ? "true" : "false")
     << ", \"kernel_dispatch\": \"" << ml::ActiveKernelDispatch() << "\""
     << ", \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << "}";
  return os.str();
}

int ScheduleLength() { return EnvInt("ST_BENCH_SCHEDULE", 24); }

std::unique_ptr<sim::StreamEngine> MakeFlinkEngine(const JobGraph& job,
                                                   uint64_t seed) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  sim::SimConfig cfg;
  cfg.noise_seed = seed * 7919 + 13;
  return std::make_unique<sim::FlinkEngine>(job, model, cfg);
}

std::unique_ptr<timelysim::TimelySimulator> MakeTimelyEngine(
    const JobGraph& job, uint64_t seed) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  timelysim::TimelyConfig cfg;
  cfg.noise_seed = seed * 6271 + 5;
  return std::make_unique<timelysim::TimelySimulator>(job, model, cfg);
}

std::vector<JobGraph> FlinkCorpusJobs() {
  std::vector<JobGraph> jobs;
  for (auto q : workloads::AllNexmarkQueries()) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
  }
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
  }
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(
        workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
  }
  return jobs;
}

std::vector<core::HistoryRecord> CollectFlinkCorpus() {
  core::HistoryOptions opts;
  opts.samples_per_job = EnvInt("ST_BENCH_SAMPLES", 30);
  return core::CollectHistory(FlinkCorpusJobs(), opts);
}

std::vector<core::HistoryRecord> CollectTimelyCorpus() {
  std::vector<JobGraph> jobs;
  for (auto q : {workloads::NexmarkQuery::kQ3, workloads::NexmarkQuery::kQ5,
                 workloads::NexmarkQuery::kQ8}) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kTimely));
  }
  core::HistoryOptions opts;
  opts.samples_per_job = EnvInt("ST_BENCH_SAMPLES", 30);
  opts.max_parallelism = 10;
  auto factory = [](const JobGraph& g, uint64_t seed) {
    sim::PerfModel model(g, workloads::CostConfigFor(g));
    timelysim::TimelyConfig cfg;
    cfg.noise_seed = seed;
    return std::make_unique<timelysim::TimelySimulator>(g, model, cfg);
  };
  return core::CollectHistory(jobs, opts, factory);
}

std::shared_ptr<core::PretrainedBundle> Pretrain(
    std::vector<core::HistoryRecord> corpus, bool use_clustering, int k) {
  core::PretrainOptions opts;
  opts.use_clustering = use_clustering;
  opts.k = k;
  auto bundle = core::Pretrainer(opts).Run(std::move(corpus));
  if (!bundle.ok()) {
    std::fprintf(stderr, "pre-training failed: %s\n",
                 bundle.status().ToString().c_str());
    std::abort();
  }
  return std::make_shared<core::PretrainedBundle>(std::move(*bundle));
}

std::unique_ptr<baselines::ZeroTuneTuner> TrainZeroTune(
    const std::vector<core::HistoryRecord>& corpus) {
  std::vector<baselines::ZeroTuneExample> examples;
  examples.reserve(corpus.size());
  for (const auto& r : corpus) {
    baselines::ZeroTuneExample ex;
    ex.graph = r.graph;
    ex.parallelism = r.parallelism;
    ex.cost = r.job_cost;
    examples.push_back(std::move(ex));
  }
  auto tuner = std::make_unique<baselines::ZeroTuneTuner>();
  Status st = tuner->Train(examples);
  if (!st.ok()) {
    std::fprintf(stderr, "ZeroTune training failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return tuner;
}

std::unique_ptr<baselines::Tuner> MakeTuner(
    const std::string& method,
    std::shared_ptr<core::PretrainedBundle> bundle,
    const std::vector<core::HistoryRecord>* zerotune_corpus) {
  if (method == "DS2") return std::make_unique<baselines::Ds2Tuner>();
  if (method == "ContTune") {
    return std::make_unique<baselines::ContTuneTuner>();
  }
  if (method == "ZeroTune") {
    return TrainZeroTune(*zerotune_corpus);
  }
  core::StreamTuneOptions opts;
  if (method == "StreamTune-SVM") opts.model = core::FineTuneModel::kSvm;
  if (method == "StreamTune-NN") opts.model = core::FineTuneModel::kNn;
  return std::make_unique<core::StreamTuneTuner>(bundle, opts);
}

ScheduleResult RunSchedule(
    const JobGraph& job, baselines::Tuner* tuner,
    const std::function<std::unique_ptr<sim::StreamEngine>(const JobGraph&)>&
        factory,
    int schedule_length) {
  ScheduleResult result;
  result.method = tuner->name();
  result.job = job.name();

  std::unique_ptr<sim::StreamEngine> engine = factory(job);
  std::vector<int> ones(job.num_operators(), 1);
  Status st = engine->Deploy(ones);
  if (!st.ok()) std::abort();

  std::vector<double> schedule = workloads::FullRateSchedule();
  schedule.resize(schedule_length);
  schedule.push_back(10.0);  // the Fig. 6 / Fig. 8a measurement point

  int total_reconfigs = 0;
  int processes = 0;
  for (double mult : schedule) {
    engine->ScaleAllSources(mult);
    auto outcome = tuner->Tune(engine.get());
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s failed on %s: %s\n", tuner->name().c_str(),
                   job.name().c_str(),
                   outcome.status().ToString().c_str());
      std::abort();
    }
    ++processes;
    total_reconfigs += outcome->reconfigurations;
    if (outcome->ended_with_backpressure) ++result.backpressure_failures;
    result.tuning_minutes.push_back(outcome->tuning_minutes);
    result.rate_multipliers.push_back(mult);
    result.parallelism_at_10x = outcome->total_parallelism;

    auto metrics = engine->Measure();
    if (metrics.ok()) {
      double cpu = 0;
      for (const auto& om : metrics->ops) cpu += om.cpu_load;
      result.cpu_utilization.push_back(
          cpu / static_cast<double>(metrics->ops.size()));
    }
  }
  result.avg_reconfigurations =
      static_cast<double>(total_reconfigs) / processes;

  engine->ScaleAllSources(10.0);
  result.oracle_at_10x = 0;
  for (int p : engine->OracleParallelism()) result.oracle_at_10x += p;
  return result;
}

ScheduleResult RunFlinkSchedule(const JobGraph& job, baselines::Tuner* tuner,
                                int schedule_length) {
  return RunSchedule(
      job, tuner,
      [](const JobGraph& g) { return MakeFlinkEngine(g); },
      schedule_length);
}

}  // namespace streamtune::bench
