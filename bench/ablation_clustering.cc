// Ablation (Exp-Q8, first half): does clustering the historical dataflow
// DAGs improve tuning efficiency over one global encoder?
//
// Both bundles are pre-trained on the same corpus; the clustered one trains
// one encoder per GED cluster (and fine-tunes from the nearest cluster's
// warm-up data), the global one trains a single encoder over everything
// (the paper's limited-dataset fallback, Sec. VII). Each then tunes
// held-out queries through the rate schedule.

#include "bench_common.h"

using namespace streamtune;
using namespace streamtune::bench;

int main() {
  int schedule = std::min(ScheduleLength(), 24);
  std::printf("schedule length: %d rate changes per query\n\n", schedule);

  auto corpus = CollectFlinkCorpus();
  auto clustered = Pretrain(corpus, /*use_clustering=*/true);
  auto global = Pretrain(corpus, /*use_clustering=*/false);
  std::printf("clustered bundle: %d clusters; global bundle: %d\n\n",
              clustered->num_clusters(), global->num_clusters());

  std::vector<JobGraph> jobs;
  jobs.push_back(workloads::BuildNexmarkJob(workloads::NexmarkQuery::kQ5,
                                            workloads::Engine::kFlink));
  jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 7));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 12));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, 20));

  TablePrinter table("Ablation: GED-clustered vs global pre-training",
                     {"job", "variant", "parallelism @10x", "oracle",
                      "avg reconfigs", "failures"});
  for (const JobGraph& job : jobs) {
    for (int use_clustered = 1; use_clustered >= 0; --use_clustered) {
      core::StreamTuneTuner tuner(use_clustered ? clustered : global);
      ScheduleResult r = RunFlinkSchedule(job, &tuner, schedule);
      table.AddRow({job.name(), use_clustered ? "clustered" : "global",
                    std::to_string(r.parallelism_at_10x),
                    std::to_string(r.oracle_at_10x),
                    TablePrinter::Fmt(r.avg_reconfigurations, 2),
                    std::to_string(r.backpressure_failures)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check (paper Sec. V-I / Sec. IV): clustering narrows each\n"
      "encoder's training distribution, so the cluster-matched warm-up data\n"
      "gives tighter recommendations and/or fewer reconfigurations than one\n"
      "global encoder; the gap is largest for structurally distinctive\n"
      "queries. (The global encoder remains a usable fallback when the\n"
      "corpus is small.)\n");
  return 0;
}
