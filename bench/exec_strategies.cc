// Adaptive execution-strategy engine, measured end to end (DESIGN.md §14).
//
// Two experiments, one per layer of the engine:
//
// 1. Metrics-aggregation sweep (common/ + sim/): reduce N flow-solver
//    samples into one FlowMetricsAccum under each ParallelReduce strategy
//    (ordered fold = the pre-PR gather-then-fold shape, tree merge, radix
//    shard) and under the selector (auto). Reports per-cell times, the
//    best fixed strategy's speedup over the ordered fold, and the
//    selector's regret against the best fixed choice. Every strategy is
//    checked bit-identical to the serial reference fold.
//
// 2. Pre-train GED assignment (graph/): assign a random-DAG corpus to its
//    nearest center by threshold-pruned GED, once with the per-pair policy
//    pinned to the pre-PR fixed search (STREAMTUNE_GED_POLICY=bounded) and
//    once adaptive. The adaptive run must produce the identical assignment
//    (outcome invariance) while skipping Prepare + greedy + A* for every
//    pair the lower-bound screen already proves dissimilar.
//
// Writes BENCH_exec.json with host provenance, the strategy execution
// counters and the GED policy histogram.
//
// Environment knobs:
//   ST_BENCH_METRICS_MAXPOW        largest sweep cell = 2^pow (default 20)
//   ST_BENCH_REPS                  timing repetitions, best-of (default 3)
//   ST_BENCH_GED_CORPUS            corpus size for the assignment phase
//                                  (default 10000)
//   ST_BENCH_GED_CENTERS           number of centers (default 32)
//   ST_BENCH_GATE                  1 enforces the CI gates, exit 1 on miss
//   ST_GATE_METRICS_SPEEDUP_PCT    min best-fixed speedup over the ordered
//                                  fold at the largest cell, %% (default 150)
//   ST_GATE_REGRET_PCT             max selector regret vs the best fixed
//                                  strategy, any cell, %% (default 10)
//   ST_GATE_GED_SPEEDUP_PCT        min adaptive-over-pinned speedup on the
//                                  assignment phase, %% (default 200)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel_reduce.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/ged_cache.h"
#include "graph/ged_kmeans.h"
#include "graph/ged_policy.h"
#include "sim/flow_solver.h"
#include "sim/metrics_aggregator.h"
#include "workloads/random_dag.h"

using namespace streamtune;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool AccumEqual(const sim::FlowMetricsAccum& a,
                const sim::FlowMetricsAccum& b) {
  return a.samples == b.samples &&
         a.backpressured_samples == b.backpressured_samples &&
         a.operators == b.operators &&
         a.saturated_operators == b.saturated_operators &&
         a.blocked_operators == b.blocked_operators &&
         a.min_lambda == b.min_lambda && a.max_lambda == b.max_lambda &&
         a.lambda_micros == b.lambda_micros &&
         a.busy_micros == b.busy_micros;
}

struct MetricsCell {
  long long n = 0;
  double ordered_ms = 0;
  double tree_ms = 0;
  double radix_ms = 0;
  double auto_ms = 0;
  std::string auto_picked;
  double best_fixed_speedup = 0;  ///< ordered_ms / best fixed strategy
  double regret = 0;              ///< auto_ms / best fixed ms - 1
  bool exact = true;
};

struct GedPhase {
  long long corpus = 0;
  int centers = 0;
  double pinned_ms = 0;
  double adaptive_ms = 0;
  double speedup = 0;
  bool assignments_match = true;
  graph::GedCache::Stats adaptive_stats;
};

}  // namespace

int main() {
  const int max_pow = bench::EnvInt("ST_BENCH_METRICS_MAXPOW", 20);
  const int reps = bench::EnvInt("ST_BENCH_REPS", 3);
  const long long ged_corpus = bench::EnvInt("ST_BENCH_GED_CORPUS", 10000);
  const int ged_centers = bench::EnvInt("ST_BENCH_GED_CENTERS", 32);

  // A strategy pin in the environment would turn the sweep into four runs
  // of the same shape; measure what the engine actually does.
  unsetenv("STREAMTUNE_REDUCE_STRATEGY");
  unsetenv("STREAMTUNE_GED_POLICY");
  StrategySelector::ResetStats();

  // ---- Phase 1: metrics-aggregation sweep -------------------------------
  // A bank of genuine flow solutions (one job, capacity scaled around the
  // feasibility knee so some samples backpressure), cycled to any N: the
  // map stays realistic while the reduction shape is what varies.
  Rng rng(0xB0B);
  const JobGraph job = workloads::GenerateRandomDag(&rng);
  const size_t ops = static_cast<size_t>(job.num_operators());
  std::vector<sim::FlowResult> bank;
  {
    std::vector<double> selectivity(ops, 0.9);
    std::vector<double> source_rate(ops, 0.0);
    for (size_t v = 0; v < ops; ++v) {
      if (job.op(static_cast<int>(v)).type == OperatorType::kSource) {
        source_rate[v] = 1000.0;
      }
    }
    for (int s = 0; s < 256; ++s) {
      std::vector<double> capacity(ops);
      for (size_t v = 0; v < ops; ++v) {
        capacity[v] = 600.0 + 8.0 * ((s * 37 + static_cast<int>(v) * 11) % 200);
      }
      bank.push_back(sim::SolveFlow(job, capacity, selectivity, source_rate));
    }
  }
  const auto solve_at = [&bank](int64_t i) -> const sim::FlowResult& {
    return bank[static_cast<size_t>(i) % bank.size()];
  };

  ThreadPool pool;
  std::vector<MetricsCell> cells;
  for (int pow = 14; pow <= max_pow; pow += 3) {
    MetricsCell cell;
    cell.n = 1LL << pow;
    const sim::FlowMetricsAccum reference =
        sim::AggregateFlowMetrics(nullptr, cell.n, solve_at);

    auto time_strategy = [&](ReduceStrategy s) {
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        const double t0 = NowMs();
        const sim::FlowMetricsAccum got =
            sim::AggregateFlowMetrics(&pool, cell.n, solve_at, s);
        best = std::min(best, NowMs() - t0);
        if (!AccumEqual(got, reference)) {
          cell.exact = false;
          std::fprintf(stderr, "MISMATCH n=%lld strategy=%s\n", cell.n,
                       ToString(s));
        }
      }
      return best;
    };

    cell.ordered_ms = time_strategy(ReduceStrategy::kOrderedFold);
    cell.tree_ms = time_strategy(ReduceStrategy::kTreeMerge);
    cell.radix_ms = time_strategy(ReduceStrategy::kRadixShard);
    const StrategyStatsSnapshot before = StrategySelector::Snapshot();
    cell.auto_ms = time_strategy(ReduceStrategy::kAuto);
    const StrategyStatsSnapshot after = StrategySelector::Snapshot();
    // The auto runs all picked the same strategy (same observables); name
    // the counter that moved.
    if (after.radix > before.radix) {
      cell.auto_picked = "radix";
    } else if (after.tree > before.tree) {
      cell.auto_picked = "tree";
    } else {
      cell.auto_picked = "ordered";
    }

    const double best_fixed = std::min({cell.tree_ms, cell.radix_ms});
    cell.best_fixed_speedup =
        best_fixed > 0 ? cell.ordered_ms / best_fixed : 0;
    const double best_any = std::min(best_fixed, cell.ordered_ms);
    cell.regret = best_any > 0 ? cell.auto_ms / best_any - 1.0 : 0;
    cells.push_back(cell);
    std::printf(
        "[metrics n=%8lld] ordered %8.2f ms | tree %8.2f ms | radix %8.2f "
        "ms | auto %8.2f ms (%s) | best-fixed %5.2fx | regret %+6.1f%%%s\n",
        cell.n, cell.ordered_ms, cell.tree_ms, cell.radix_ms, cell.auto_ms,
        cell.auto_picked.c_str(), cell.best_fixed_speedup,
        cell.regret * 100.0, cell.exact ? "" : "  MISMATCH (BUG)");
  }

  // ---- Phase 2: pre-train GED assignment --------------------------------
  // The clustered pre-train regime the paper's KB is built on: workloads
  // recur, so the corpus is duplicates and small variants of a handful of
  // structurally distinct job shapes (the cluster centers). Each graph is
  // assigned to the nearest center within tau (Def. 1), the threshold
  // tightening to the best distance found so far — exactly the pruning
  // structure of the kmeans assignment step. For every far pair the label
  // set lower bound already proves ged > threshold; the pinned policy
  // still pays Prepare + greedy + a pruned root expansion there, the
  // adaptive policy answers from the screen.
  GedPhase ged;
  ged.corpus = ged_corpus;
  ged.centers = ged_centers;
  {
    const double tau = 2.0;
    // Centers: random jobs kept only if the lower bound to every earlier
    // center clears tau with margin (distinct clusters have distinct
    // shapes; the margin keeps one-edit variants screenable too).
    std::vector<JobGraph> centers;
    {
      Rng center_rng(0xACE);
      int attempts = 0;
      while (static_cast<int>(centers.size()) < ged_centers &&
             attempts < 100 * ged_centers) {
        ++attempts;
        // Vary the shape envelope so mutually distant centers exist: size
        // spread is what drives the label-set bound apart.
        workloads::RandomDagConfig cfg;
        cfg.min_sources = 1 + attempts % 3;
        cfg.max_sources = cfg.min_sources;
        cfg.max_chain_length = 1 + (attempts / 3) % 6;
        JobGraph candidate = workloads::GenerateRandomDag(&center_rng, cfg);
        bool distinct = true;
        for (const JobGraph& c : centers) {
          if (graph::LabelSetLowerBound(candidate, c) <= tau + 3.0) {
            distinct = false;
            break;
          }
        }
        if (distinct) centers.push_back(std::move(candidate));
      }
      ged.centers = static_cast<int>(centers.size());
    }

    // Corpus: each graph recurs as a copy of its center, a quarter of them
    // with one operator relabeled (distance <= 2, still within tau).
    std::vector<JobGraph> corpus;
    corpus.reserve(static_cast<size_t>(ged_corpus));
    for (long long i = 0; i < ged_corpus; ++i) {
      JobGraph g = centers[static_cast<size_t>(i) % centers.size()];
      if (i % 4 == 0) {
        for (int v = 0; v < g.num_operators(); ++v) {
          OperatorType& t = g.mutable_op(v).type;
          if (t == OperatorType::kMap) {
            t = OperatorType::kFilter;
            break;
          }
          if (t == OperatorType::kFilter) {
            t = OperatorType::kMap;
            break;
          }
        }
      }
      corpus.push_back(std::move(g));
    }

    auto assign_all = [&](graph::GedPolicyCounters* counters) {
      std::vector<int> assignment(corpus.size(), -1);
      for (size_t i = 0; i < corpus.size(); ++i) {
        double best = tau;
        for (size_t c = 0; c < centers.size(); ++c) {
          graph::GedOptions opts;
          opts.threshold = best;
          const graph::GedResult r =
              graph::PolicyComputeGed(corpus[i], centers[c], opts, counters);
          if (r.exact && r.distance <= best) {
            best = r.distance;
            assignment[i] = static_cast<int>(c);
          }
        }
      }
      return assignment;
    };

    setenv("STREAMTUNE_GED_POLICY", "bounded", 1);
    double t0 = NowMs();
    const std::vector<int> pinned = assign_all(nullptr);
    ged.pinned_ms = NowMs() - t0;

    unsetenv("STREAMTUNE_GED_POLICY");
    graph::GedPolicyCounters counters;
    t0 = NowMs();
    const std::vector<int> adaptive = assign_all(&counters);
    ged.adaptive_ms = NowMs() - t0;

    ged.assignments_match = adaptive == pinned;
    bool all_assigned = true;
    for (int a : adaptive) all_assigned &= a >= 0;
    ged.assignments_match &= all_assigned;
    ged.speedup = ged.adaptive_ms > 0 ? ged.pinned_ms / ged.adaptive_ms : 0;
    ged.adaptive_stats.policy_upper = counters.upper.load();
    ged.adaptive_stats.policy_bounded = counters.bounded.load();
    ged.adaptive_stats.policy_exact = counters.exact.load();
    ged.adaptive_stats.budget_exhausted = counters.budget_exhausted.load();
    std::printf(
        "[ged corpus=%lld centers=%d] pinned %8.1f ms | adaptive %8.1f ms "
        "-> %5.2fx | upper %llu bounded %llu exact %llu budget %llu%s\n",
        ged.corpus, ged.centers, ged.pinned_ms, ged.adaptive_ms, ged.speedup,
        static_cast<unsigned long long>(ged.adaptive_stats.policy_upper),
        static_cast<unsigned long long>(ged.adaptive_stats.policy_bounded),
        static_cast<unsigned long long>(ged.adaptive_stats.policy_exact),
        static_cast<unsigned long long>(ged.adaptive_stats.budget_exhausted),
        ged.assignments_match ? "" : "  ASSIGNMENT MISMATCH (BUG)");
  }

  bool exact_all = ged.assignments_match;
  for (const MetricsCell& c : cells) exact_all &= c.exact;
  const MetricsCell& headline = cells.back();

  const StrategyStatsSnapshot strat = StrategySelector::Snapshot();
  std::ostringstream json;
  json << "{\n  \"host\": " << bench::HostInfoJson() << ",\n"
       << "  \"reps\": " << reps << ",\n  \"metrics_sweep\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const MetricsCell& c = cells[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "    {\"n\": %lld, \"ordered_ms\": %.3f, \"tree_ms\": %.3f, "
        "\"radix_ms\": %.3f, \"auto_ms\": %.3f, \"auto_picked\": \"%s\", "
        "\"best_fixed_speedup\": %.3f, \"regret\": %.4f, \"exact\": %s}%s\n",
        c.n, c.ordered_ms, c.tree_ms, c.radix_ms, c.auto_ms,
        c.auto_picked.c_str(), c.best_fixed_speedup, c.regret,
        c.exact ? "true" : "false", i + 1 < cells.size() ? "," : "");
    json << line;
  }
  json << "  ],\n";
  {
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "  \"ged_assignment\": {\"corpus\": %lld, \"centers\": %d, "
        "\"pinned_ms\": %.1f, \"adaptive_ms\": %.1f, \"speedup\": %.3f, "
        "\"assignments_match\": %s, \"policy_upper\": %llu, "
        "\"policy_bounded\": %llu, \"policy_exact\": %llu, "
        "\"budget_exhausted\": %llu},\n"
        "  \"strategy_counters\": {\"ordered\": %llu, \"tree\": %llu, "
        "\"radix\": %llu, \"auto_picks\": %llu, \"pinned_picks\": %llu, "
        "\"clamped\": %llu},\n"
        "  \"headline_metrics_speedup\": %.3f,\n"
        "  \"headline_ged_speedup\": %.3f,\n"
        "  \"exactness\": %s\n}\n",
        ged.corpus, ged.centers, ged.pinned_ms, ged.adaptive_ms, ged.speedup,
        ged.assignments_match ? "true" : "false",
        static_cast<unsigned long long>(ged.adaptive_stats.policy_upper),
        static_cast<unsigned long long>(ged.adaptive_stats.policy_bounded),
        static_cast<unsigned long long>(ged.adaptive_stats.policy_exact),
        static_cast<unsigned long long>(ged.adaptive_stats.budget_exhausted),
        static_cast<unsigned long long>(strat.ordered),
        static_cast<unsigned long long>(strat.tree),
        static_cast<unsigned long long>(strat.radix),
        static_cast<unsigned long long>(strat.auto_picks),
        static_cast<unsigned long long>(strat.pinned_picks),
        static_cast<unsigned long long>(strat.clamped),
        headline.best_fixed_speedup, ged.speedup,
        exact_all ? "true" : "false");
    json << buf;
  }
  {
    std::ofstream f("BENCH_exec.json", std::ios::trunc);
    f << json.str();
  }
  std::printf("wrote BENCH_exec.json\n");

  // Self-enforcing CI gates.
  if (bench::EnvInt("ST_BENCH_GATE", 0) != 0) {
    const double min_metrics =
        bench::EnvInt("ST_GATE_METRICS_SPEEDUP_PCT", 150) / 100.0;
    const double max_regret = bench::EnvInt("ST_GATE_REGRET_PCT", 10) / 100.0;
    const double min_ged =
        bench::EnvInt("ST_GATE_GED_SPEEDUP_PCT", 200) / 100.0;
    int failures = 0;
    if (!exact_all) {
      std::fprintf(stderr, "GATE: bit-identity violated\n");
      ++failures;
    }
    if (headline.best_fixed_speedup < min_metrics) {
      std::fprintf(stderr, "GATE: metrics speedup %.2f < %.2f at n=%lld\n",
                   headline.best_fixed_speedup, min_metrics, headline.n);
      ++failures;
    }
    for (const MetricsCell& c : cells) {
      if (c.regret > max_regret) {
        std::fprintf(stderr, "GATE: selector regret %.1f%% > %.1f%% at "
                     "n=%lld\n",
                     c.regret * 100.0, max_regret * 100.0, c.n);
        ++failures;
      }
    }
    if (ged.speedup < min_ged) {
      std::fprintf(stderr, "GATE: ged speedup %.2f < %.2f\n", ged.speedup,
                   min_ged);
      ++failures;
    }
    if (failures > 0) return 1;
    std::printf(
        "gates: OK (metrics >= %.2fx, regret <= %.0f%%, ged >= %.2fx, "
        "exact)\n",
        min_metrics, max_regret * 100.0, min_ged);
  }
  return 0;
}
