// Fig. 6: final parallelism recommendations by different methods when the
// source rate changes to 10x W_u, on the simulated Flink cluster.
//
// Each method drives the periodic source-rate schedule on every query
// (Nexmark Q1-Q8 and one representative variant per PQP template); the
// reported number is the total operator parallelism after the tuning
// process at the final 10x W_u change. ZeroTune is PQP-specific (as in the
// paper) and is skipped on Nexmark.

#include "bench_common.h"

using namespace streamtune;
using namespace streamtune::bench;

int main() {
  int schedule = ScheduleLength();
  std::printf("schedule length: %d rate changes per query "
              "(ST_BENCH_SCHEDULE; paper uses 120)\n\n",
              schedule);

  auto corpus = CollectFlinkCorpus();
  auto bundle = Pretrain(corpus);
  auto zerotune = TrainZeroTune(corpus);   // shared: its model is job-agnostic
  auto streamtune = MakeTuner("StreamTune", bundle);  // accumulates per job

  std::vector<JobGraph> jobs;
  for (auto q : workloads::AllNexmarkQueries()) {
    jobs.push_back(workloads::BuildNexmarkJob(q, workloads::Engine::kFlink));
  }
  // Held-out PQP variants (not in the pre-training slice).
  jobs.push_back(workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 7));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 12));
  jobs.push_back(
      workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, 20));

  TablePrinter table(
      "Fig. 6: total parallelism at 10x W_u (lower = fewer CPU resources)",
      {"job", "DS2", "ContTune", "ZeroTune", "StreamTune", "oracle"});
  for (const JobGraph& job : jobs) {
    bool is_pqp = job.name().rfind("pqp-", 0) == 0;
    std::vector<std::string> row{job.name()};
    int oracle = 0;
    for (const std::string& method :
         {std::string("DS2"), std::string("ContTune"), std::string("ZeroTune"),
          std::string("StreamTune")}) {
      if (method == "ZeroTune" && !is_pqp) {
        row.push_back("/");
        continue;
      }
      baselines::Tuner* tuner_ptr;
      std::unique_ptr<baselines::Tuner> fresh;
      if (method == "ZeroTune") {
        tuner_ptr = zerotune.get();
      } else if (method == "StreamTune") {
        tuner_ptr = streamtune.get();
      } else {
        fresh = MakeTuner(method, bundle);
        tuner_ptr = fresh.get();
      }
      ScheduleResult r = RunFlinkSchedule(job, tuner_ptr, schedule);
      row.push_back(std::to_string(r.parallelism_at_10x));
      oracle = r.oracle_at_10x;
    }
    row.push_back(std::to_string(oracle));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nShape check (paper Fig. 6): StreamTune recommends the lowest (or\n"
      "tied-lowest) total parallelism; DS2/ContTune land close on simple\n"
      "queries; ZeroTune is by far the most resource-hungry on PQP.\n");
  return 0;
}
