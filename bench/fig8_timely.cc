// Fig. 8: generality evaluation on Timely Dataflow.
//   (a) total operator parallelism recommended at 10x W_u for Q3/Q5/Q8;
//   (b)-(d) CDFs of per-epoch latencies under each method's final
//   recommendation. ZeroTune is PQP-specific and not evaluated here, as in
//   the paper; Q1/Q2 run fine at parallelism 1 on Timely and are skipped.

#include "bench_common.h"
#include "common/math_util.h"

using namespace streamtune;
using namespace streamtune::bench;

int main() {
  int schedule = ScheduleLength();
  std::printf("schedule length: %d rate changes per query "
              "(ST_BENCH_SCHEDULE; paper uses 120)\n\n",
              schedule);

  auto corpus = CollectTimelyCorpus();
  auto bundle = Pretrain(std::move(corpus), /*use_clustering=*/false);

  const std::vector<workloads::NexmarkQuery> queries = {
      workloads::NexmarkQuery::kQ3, workloads::NexmarkQuery::kQ5,
      workloads::NexmarkQuery::kQ8};
  const std::vector<std::string> methods = {"DS2", "ContTune", "StreamTune"};

  TablePrinter fig8a("Fig. 8a: total parallelism at 10x W_u (Timely)",
                     {"job", "DS2", "ContTune", "StreamTune", "oracle"});
  // Final parallelism per (query, method) for the latency CDFs.
  std::vector<std::vector<std::vector<int>>> finals(
      queries.size(), std::vector<std::vector<int>>(methods.size()));

  auto factory = [](const JobGraph& g) -> std::unique_ptr<sim::StreamEngine> {
    return MakeTimelyEngine(g);
  };

  double max_reduction = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    JobGraph job =
        workloads::BuildNexmarkJob(queries[qi], workloads::Engine::kTimely);
    std::vector<std::string> row{job.name()};
    int oracle = 0;
    int ds2_total = 0, st_total = 0;
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      auto tuner = MakeTuner(methods[mi], bundle, nullptr);
      ScheduleResult r = RunSchedule(job, tuner.get(), factory, schedule);
      row.push_back(std::to_string(r.parallelism_at_10x));
      oracle = r.oracle_at_10x;
      if (methods[mi] == "DS2") ds2_total = r.parallelism_at_10x;
      if (methods[mi] == "StreamTune") st_total = r.parallelism_at_10x;

      // Per-operator assignment for the latency CDFs: one more tuning
      // process at 10x W_u with the (now warm) tuner on a fresh engine.
      auto engine = MakeTimelyEngine(job, 99);
      std::vector<int> ones(job.num_operators(), 1);
      (void)engine->Deploy(ones);
      engine->ScaleAllSources(10.0);
      auto out = tuner->Tune(engine.get());
      if (out.ok()) finals[qi][mi] = out->final_parallelism;
    }
    if (ds2_total > 0) {
      max_reduction = std::max(
          max_reduction, 100.0 * (1.0 - static_cast<double>(st_total) /
                                            ds2_total));
    }
    row.push_back(std::to_string(oracle));
    fig8a.AddRow(row);
  }
  fig8a.Print();
  std::printf("\nmax StreamTune parallelism reduction vs DS2: %.1f%%\n\n",
              max_reduction);

  // Fig. 8b-8d: per-epoch latency CDFs at the final deployments.
  const int kEpochs = 150;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    JobGraph job =
        workloads::BuildNexmarkJob(queries[qi], workloads::Engine::kTimely);
    TablePrinter cdf(
        std::string("Fig. 8b-d: per-epoch latency percentiles for ") +
            job.name() + " at 10x W_u (seconds)",
        {"method", "p10", "p50", "p90", "p99"});
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      if (finals[qi][mi].empty()) continue;
      auto engine = MakeTimelyEngine(job, 7);
      engine->ScaleAllSources(10.0);
      (void)engine->Deploy(finals[qi][mi]);
      auto trace = engine->RunEpochs(kEpochs);
      if (!trace.ok()) continue;
      cdf.AddRow({methods[mi],
                  TablePrinter::Fmt(Percentile(trace->latencies, 10), 3),
                  TablePrinter::Fmt(Percentile(trace->latencies, 50), 3),
                  TablePrinter::Fmt(Percentile(trace->latencies, 90), 3),
                  TablePrinter::Fmt(Percentile(trace->latencies, 99), 3)});
    }
    cdf.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape check (paper Fig. 8): StreamTune recommends far lower\n"
      "parallelism than DS2/ContTune (up to 83.3%% less on Q8 in the\n"
      "paper) while the latency CDFs remain comparable — DS2/ContTune\n"
      "over-provision because Timely's spinning workers inflate the\n"
      "useful-time metric they divide by.\n");
  return 0;
}
