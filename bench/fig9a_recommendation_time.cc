// Fig. 9a: average recommendation time per method as PQP query complexity
// grows — the model/policy computation for ONE tuning iteration (fit +
// recommend), excluding stabilization waits, on tuners warmed with prior
// tuning history. Uses google-benchmark.

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace streamtune;
using namespace streamtune::bench;

namespace {

struct Fixture {
  std::shared_ptr<core::PretrainedBundle> bundle;
  Fixture() {
    core::HistoryOptions opts;
    opts.samples_per_job = 15;
    std::vector<JobGraph> jobs;
    for (int i = 0; i < 4; ++i) {
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
    }
    bundle = Pretrain(core::CollectHistory(jobs, opts),
                      /*use_clustering=*/false);
  }
};

Fixture& GetFixture() {
  static Fixture fixture;
  return fixture;
}

JobGraph JobFor(int template_id) {
  switch (template_id) {
    case 0:
      return workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, 5);
    case 1:
      return workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, 5);
    default:
      return workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, 5);
  }
}

// Warms the tuner with prior tuning history (20 rate changes), then times
// single-iteration Tune calls under alternating rates.
void TimeOneIteration(benchmark::State& state, baselines::Tuner* tuner,
                      const JobGraph& job) {
  auto engine = MakeFlinkEngine(job);
  std::vector<int> ones(job.num_operators(), 1);
  (void)engine->Deploy(ones);
  auto warm = workloads::RateSequence(0);
  for (int i = 0; i < 20; ++i) {
    engine->ScaleAllSources(warm[i]);
    (void)tuner->Tune(engine.get());
  }
  double rates[2] = {10.0, 4.0};
  int flip = 0;
  for (auto _ : state) {
    engine->ScaleAllSources(rates[flip ^= 1]);
    auto out = tuner->Tune(engine.get());
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(job.name());
}

void BM_Ds2Recommendation(benchmark::State& state) {
  JobGraph job = JobFor(static_cast<int>(state.range(0)));
  baselines::Ds2Options opts;
  opts.max_iterations = 1;
  baselines::Ds2Tuner tuner(opts);
  TimeOneIteration(state, &tuner, job);
}

void BM_ContTuneRecommendation(benchmark::State& state) {
  JobGraph job = JobFor(static_cast<int>(state.range(0)));
  baselines::ContTuneOptions opts;
  opts.max_iterations = 1;
  baselines::ContTuneTuner tuner(opts);
  TimeOneIteration(state, &tuner, job);
}

void BM_StreamTuneRecommendation(benchmark::State& state) {
  JobGraph job = JobFor(static_cast<int>(state.range(0)));
  core::StreamTuneOptions opts;
  opts.max_iterations = 1;
  core::StreamTuneTuner tuner(GetFixture().bundle, opts);
  TimeOneIteration(state, &tuner, job);
}

BENCHMARK(BM_Ds2Recommendation)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ContTuneRecommendation)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamTuneRecommendation)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nShape check (paper Fig. 9a): range 0/1/2 = Linear/2-way/3-way.\n"
      "DS2's closed-form step is fastest. ContTune's per-operator GP\n"
      "refits grow with operator count (in the paper, sklearn GPs make it\n"
      "the slowest overall; this C++ GP is much faster in absolute terms).\n"
      "StreamTune's cost is the M_f refit, roughly independent of query\n"
      "complexity — the paper's stability claim.\n");
  return 0;
}
