// Ablation: the analytic steady-state flow solver versus the record-level
// discrete-event simulation, on every Nexmark query at two provisioning
// levels. Validates the substrate substitution (DESIGN.md §1): the signals
// the tuners consume (busy fractions, throughput ratio, bottleneck
// location) agree between the fixed point and an actual record-by-record
// execution with bounded buffers.

#include "bench_common.h"
#include "sim/event_simulator.h"
#include "sim/flow_solver.h"

using namespace streamtune;

int main() {
  TablePrinter table(
      "Ablation: analytic flow solver vs discrete-event simulation",
      {"job", "deployment", "lambda (analytic)", "throughput (DES)",
       "max |busy diff|", "bottleneck agrees"});

  for (auto q : workloads::AllNexmarkQueries()) {
    JobGraph job = workloads::BuildNexmarkJob(q, workloads::Engine::kFlink);
    sim::PerfModel model(job, workloads::CostConfigFor(job));
    const int n = job.num_operators();
    std::vector<double> rates(n, 0.0), sel(n);
    for (int v = 0; v < n; ++v) {
      if (job.op(v).is_source()) rates[v] = job.op(v).source_rate * 4;
      sel[v] = model.Selectivity(v);
    }

    struct Deployment {
      const char* label;
      bool oracle;
    };
    for (const Deployment& dep : {Deployment{"under-provisioned (p=1)", false},
                                  Deployment{"well-provisioned", true}}) {
      std::vector<int> p(n, 1);
      if (dep.oracle) {
        std::vector<double> huge(n, 1e18);
        sim::FlowResult want = sim::SolveFlow(job, huge, sel, rates);
        for (int v = 0; v < n; ++v) {
          p[v] = std::min(
              100, model.MinParallelismFor(v, 1.2 * want.desired_in[v], 100));
        }
      }
      std::vector<double> capacity(n);
      for (int v = 0; v < n; ++v) {
        capacity[v] = model.ProcessingAbility(v, p[v]);
      }
      sim::FlowResult analytic = sim::SolveFlow(job, capacity, sel, rates);
      auto des = sim::RunEventSimulation(job, model, p, rates);
      if (!des.ok()) continue;

      double max_busy_diff = 0;
      for (int v = 0; v < n; ++v) {
        max_busy_diff = std::max(
            max_busy_diff, std::fabs(analytic.busy[v] - des->busy_frac[v]));
      }
      // Bottleneck location agreement: the analytic saturated operator is
      // the DES operator with the highest busy+blocked share.
      int analytic_bn = -1, des_bn = 0;
      double best = -1;
      for (int v = 0; v < n; ++v) {
        if (analytic.saturated[v]) analytic_bn = v;
        double load = des->busy_frac[v];
        if (load > best) {
          best = load;
          des_bn = v;
        }
      }
      bool agrees = analytic_bn < 0 || analytic_bn == des_bn;
      table.AddRow({job.name(), dep.label,
                    TablePrinter::Fmt(analytic.lambda, 3),
                    TablePrinter::Fmt(des->source_throughput_ratio, 3),
                    TablePrinter::Fmt(max_busy_diff, 3),
                    agrees ? "yes" : "no"});
    }
  }
  table.Print();
  std::printf(
      "\nValidation claim: the two models agree on throughput ratio (within\n"
      "sampling error), per-operator busy fractions, and which operator is\n"
      "the bottleneck — so tuning conclusions drawn on the fast analytic\n"
      "engine carry over to record-level execution.\n");
  return 0;
}
