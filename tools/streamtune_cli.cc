// streamtune_cli — operate the StreamTune pipeline from the command line.
//
//   streamtune_cli collect  --workload nexmark-flink|nexmark-timely|pqp|all
//                           [--samples N] [--seed S] --out history.txt
//   streamtune_cli pretrain --history history.txt [--no-cluster] [--k K]
//                           [--epochs N] --out bundle.txt | --kb-path kb.txt
//   streamtune_cli tune     --bundle bundle.txt | --kb-path kb.txt [--admit]
//                           --job <spec> [--rate M]
//                           [--engine flink|timely] [--model xgboost|svm|nn]
//   streamtune_cli admit    --kb-path kb.txt --history history.txt
//   streamtune_cli simulate --job <spec> [--rate M] [--parallelism p1,p2,..]
//   streamtune_cli inspect  --history h.txt | --bundle b.txt | --kb kb.txt
//
// Job specs: nexmark:Q1|Q2|Q3|Q5|Q8  or  pqp:linear|2way|3way:<variant>.
//
// The knowledge-base flow (--kb-path) persists the full StreamTune loop:
// pretrain writes a KB, tune reads it (warm-starting from the job's own
// admitted feedback) and --admit folds the converged session back in.

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/table_printer.h"
#include "core/history.h"
#include "sim/chaos_engine.h"
#include "sim/metrics_sanitizer.h"
#include "core/pretrain.h"
#include "core/serialization.h"
#include "core/streamtune_tuner.h"
#include "kb/kb_service.h"
#include "sim/engine.h"
#include "sim/event_simulator.h"
#include "timelysim/timely_simulator.h"
#include "workloads/cost_config.h"
#include "workloads/nexmark.h"
#include "workloads/pqp.h"

using namespace streamtune;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  streamtune_cli collect  --workload nexmark-flink|nexmark-timely|"
      "pqp|all [--samples N] [--seed S] --out FILE\n"
      "  streamtune_cli pretrain --history FILE [--no-cluster] [--k K] "
      "[--epochs N] --out FILE | --kb-path FILE\n"
      "  streamtune_cli tune     --bundle FILE | --kb-path FILE [--admit] "
      "--job SPEC [--rate M] "
      "[--engine flink|timely] [--model xgboost|svm|nn]\n"
      "                          [--chaos-seed S] [--chaos-deploy-fail P]\n"
      "                          [--chaos-metric-drop P] "
      "[--chaos-straggler P]\n"
      "                          [--chaos-corrupt P] [--chaos-spike P]\n"
      "  streamtune_cli admit    --kb-path FILE --history FILE\n"
      "  streamtune_cli simulate --job SPEC [--rate M] "
      "[--parallelism p1,p2,...]\n"
      "  streamtune_cli inspect  --history FILE | --bundle FILE | --kb FILE\n"
      "job SPEC: nexmark:Q1|Q2|Q3|Q5|Q8 or pqp:linear|2way|3way:VARIANT\n");
  return 2;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

Result<JobGraph> ParseJobSpec(const std::string& spec, bool timely) {
  auto engine = timely ? workloads::Engine::kTimely : workloads::Engine::kFlink;
  if (spec.rfind("nexmark:", 0) == 0) {
    std::string q = spec.substr(8);
    for (auto query : workloads::AllNexmarkQueries()) {
      if (q == workloads::NexmarkQueryName(query)) {
        return workloads::BuildNexmarkJob(query, engine);
      }
    }
    return Status::InvalidArgument("unknown Nexmark query '" + q + "'");
  }
  if (spec.rfind("pqp:", 0) == 0) {
    std::string rest = spec.substr(4);
    size_t colon = rest.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("pqp spec needs a variant index");
    }
    std::string tmpl = rest.substr(0, colon);
    int variant = std::atoi(rest.substr(colon + 1).c_str());
    workloads::PqpTemplate t;
    if (tmpl == "linear") {
      t = workloads::PqpTemplate::kLinear;
    } else if (tmpl == "2way") {
      t = workloads::PqpTemplate::kTwoWayJoin;
    } else if (tmpl == "3way") {
      t = workloads::PqpTemplate::kThreeWayJoin;
    } else {
      return Status::InvalidArgument("unknown PQP template '" + tmpl + "'");
    }
    if (variant < 0 || variant >= workloads::PqpVariantCount(t)) {
      return Status::InvalidArgument("PQP variant out of range");
    }
    return workloads::BuildPqpJob(t, variant);
  }
  return Status::InvalidArgument("unrecognized job spec '" + spec + "'");
}

std::unique_ptr<sim::StreamEngine> MakeEngine(const JobGraph& job,
                                              bool timely, uint64_t seed) {
  sim::PerfModel model(job, workloads::CostConfigFor(job));
  if (timely) {
    timelysim::TimelyConfig cfg;
    cfg.noise_seed = seed;
    return std::make_unique<timelysim::TimelySimulator>(job, model, cfg);
  }
  sim::SimConfig cfg;
  cfg.noise_seed = seed;
  return std::make_unique<sim::FlinkEngine>(job, model, cfg);
}

int CmdCollect(const std::map<std::string, std::string>& flags) {
  auto out = flags.find("out");
  if (out == flags.end()) return Usage();
  std::string workload = flags.count("workload") ? flags.at("workload")
                                                 : std::string("all");
  bool timely = workload == "nexmark-timely";

  std::vector<JobGraph> jobs;
  auto engine = timely ? workloads::Engine::kTimely : workloads::Engine::kFlink;
  if (workload == "nexmark-flink" || workload == "nexmark-timely" ||
      workload == "all") {
    for (auto q : workloads::AllNexmarkQueries()) {
      jobs.push_back(workloads::BuildNexmarkJob(q, engine));
    }
  }
  if (workload == "pqp" || workload == "all") {
    for (int i = 0; i < 6; ++i) {
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kLinear, i));
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kTwoWayJoin, i));
      jobs.push_back(
          workloads::BuildPqpJob(workloads::PqpTemplate::kThreeWayJoin, i));
    }
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 2;
  }

  core::HistoryOptions opts;
  if (flags.count("samples")) {
    opts.samples_per_job = std::atoi(flags.at("samples").c_str());
  }
  if (flags.count("seed")) {
    opts.seed = std::strtoull(flags.at("seed").c_str(), nullptr, 10);
  }
  core::EngineFactory factory;
  if (timely) {
    opts.max_parallelism = 10;
    factory = [](const JobGraph& g, uint64_t seed) {
      sim::PerfModel model(g, workloads::CostConfigFor(g));
      timelysim::TimelyConfig cfg;
      cfg.noise_seed = seed;
      return std::make_unique<timelysim::TimelySimulator>(g, model, cfg);
    };
  }
  auto records = core::CollectHistory(jobs, opts, factory);
  Status st = core::SaveHistory(records, out->second);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("collected %zu records from %zu jobs -> %s\n", records.size(),
              jobs.size(), out->second.c_str());
  return 0;
}

int CmdPretrain(const std::map<std::string, std::string>& flags) {
  if (!flags.count("history") ||
      (!flags.count("out") && !flags.count("kb-path"))) {
    return Usage();
  }
  auto records = core::LoadHistory(flags.at("history"));
  if (!records.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }
  core::PretrainOptions opts;
  if (flags.count("no-cluster")) opts.use_clustering = false;
  if (flags.count("k")) opts.k = std::atoi(flags.at("k").c_str());
  if (flags.count("epochs")) {
    opts.epochs = std::atoi(flags.at("epochs").c_str());
  }
  std::printf("pre-training on %zu records...\n", records->size());
  auto bundle = core::Pretrainer(opts).Run(std::move(*records));
  if (!bundle.ok()) {
    std::fprintf(stderr, "pre-training failed: %s\n",
                 bundle.status().ToString().c_str());
    return 1;
  }
  if (flags.count("out")) {
    Status st = core::SaveBundle(*bundle, flags.at("out"));
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("pre-trained %d cluster(s) -> %s\n", bundle->num_clusters(),
                flags.at("out").c_str());
  }
  if (flags.count("kb-path")) {
    auto service = kb::KbService::FromBundle(
        std::make_shared<const core::PretrainedBundle>(std::move(*bundle)));
    Status st = service->Save(flags.at("kb-path"));
    if (!st.ok()) {
      std::fprintf(stderr, "kb save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("knowledge base initialized -> %s\n",
                flags.at("kb-path").c_str());
  }
  return 0;
}

int CmdTune(const std::map<std::string, std::string>& flags) {
  if ((!flags.count("bundle") && !flags.count("kb-path")) ||
      !flags.count("job")) {
    return Usage();
  }
  if (flags.count("admit") && !flags.count("kb-path")) {
    std::fprintf(stderr, "--admit requires --kb-path\n");
    return 2;
  }
  bool timely = flags.count("engine") && flags.at("engine") == "timely";

  sim::FaultPlan plan;
  if (flags.count("chaos-seed")) {
    plan.seed = std::strtoull(flags.at("chaos-seed").c_str(), nullptr, 10);
  }
  if (flags.count("chaos-deploy-fail")) {
    plan.deploy_failure_prob = std::atof(flags.at("chaos-deploy-fail").c_str());
  }
  if (flags.count("chaos-metric-drop")) {
    plan.measure_dropout_prob = std::atof(flags.at("chaos-metric-drop").c_str());
  }
  if (flags.count("chaos-straggler")) {
    plan.straggler_prob = std::atof(flags.at("chaos-straggler").c_str());
  }
  if (flags.count("chaos-corrupt")) {
    plan.metric_corruption_prob = std::atof(flags.at("chaos-corrupt").c_str());
  }
  if (flags.count("chaos-spike")) {
    plan.rate_spike_prob = std::atof(flags.at("chaos-spike").c_str());
  }
  Status plan_ok = plan.Validate();
  if (!plan_ok.ok()) {
    std::fprintf(stderr, "bad fault plan: %s\n", plan_ok.ToString().c_str());
    return 2;
  }

  std::unique_ptr<kb::KbService> service;
  std::shared_ptr<const kb::KbSnapshot> snapshot;
  std::shared_ptr<const core::PretrainedBundle> bundle;
  if (flags.count("kb-path")) {
    auto svc = kb::KbService::Open(flags.at("kb-path"));
    if (!svc.ok()) {
      std::fprintf(stderr, "kb load failed: %s\n",
                   svc.status().ToString().c_str());
      return 1;
    }
    service = std::move(*svc);
    snapshot = service->Snapshot();
    bundle = snapshot->bundle();
  } else {
    auto bundle_res = core::LoadBundle(flags.at("bundle"));
    if (!bundle_res.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   bundle_res.status().ToString().c_str());
      return 1;
    }
    bundle = std::make_shared<const core::PretrainedBundle>(
        std::move(*bundle_res));
  }
  auto job = ParseJobSpec(flags.at("job"), timely);
  if (!job.ok()) {
    std::fprintf(stderr, "%s\n", job.status().ToString().c_str());
    return 2;
  }
  double rate = flags.count("rate") ? std::atof(flags.at("rate").c_str())
                                    : 10.0;

  auto bare_engine = MakeEngine(*job, timely, 7);
  sim::StreamEngine* engine = bare_engine.get();
  std::unique_ptr<sim::ChaosEngine> chaos;
  if (!plan.Empty()) {
    chaos = std::make_unique<sim::ChaosEngine>(bare_engine.get(), plan);
    engine = chaos.get();
  }
  std::vector<int> ones(job->num_operators(), 1);
  // Retried so an injected fault cannot leave the job undeployed before
  // tuning even starts (a single call when chaos is off).
  (void)sim::DeployWithRetry(engine, ones, RetryOptions{});
  engine->ScaleAllSources(rate);

  core::StreamTuneOptions opts;
  if (flags.count("model")) {
    const std::string& m = flags.at("model");
    if (m == "svm") opts.model = core::FineTuneModel::kSvm;
    if (m == "nn") opts.model = core::FineTuneModel::kNn;
  }
  std::unique_ptr<core::StreamTuneTuner> tuner =
      snapshot ? snapshot->NewTuner(job->name(), opts)
               : std::make_unique<core::StreamTuneTuner>(bundle, opts);
  if (snapshot && snapshot->job(job->name())) {
    std::printf("warm start: %zu admitted feedback sample(s) for %s\n",
                snapshot->job(job->name())->feedback.size(),
                job->name().c_str());
  }
  auto outcome = tuner->Tune(engine);
  if (!outcome.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("%s tuned %s at %.1fx W_u on %s\n", tuner->name().c_str(),
              job->name().c_str(), rate, timely ? "Timely" : "Flink");
  TablePrinter table("recommendation", {"operator", "parallelism"});
  for (int v = 0; v < job->num_operators(); ++v) {
    table.AddRow({job->op(v).name,
                  std::to_string(outcome->final_parallelism[v])});
  }
  table.Print();
  std::printf(
      "total=%d reconfigurations=%d tuning_minutes=%.0f clean=%s\n",
      outcome->total_parallelism, outcome->reconfigurations,
      outcome->tuning_minutes,
      outcome->ended_with_backpressure ? "NO (backpressure!)" : "yes");
  if (chaos) {
    const sim::ChaosStats& cs = chaos->stats();
    std::printf(
        "chaos: injected=%d (deploy_failures=%d dropouts=%d corrupted=%d "
        "frozen=%d stragglers=%d spikes=%d)\n",
        cs.total(), cs.deploy_failures, cs.measure_dropouts,
        cs.corrupted_samples, cs.frozen_replays, cs.stragglers,
        cs.rate_spikes);
    std::printf("survived: faults=%d retries=%d rollbacks=%d\n",
                outcome->faults_survived, outcome->retries,
                outcome->rollbacks);
  }

  if (flags.count("admit")) {
    kb::AdmissionRecord rec;
    rec.record.graph = *job;
    rec.record.parallelism = engine->parallelism();
    rec.record.source_rates = engine->current_source_rates();
    auto metrics = engine->Measure();
    if (!metrics.ok()) {
      std::fprintf(stderr, "final measurement failed: %s\n",
                   metrics.status().ToString().c_str());
      return 1;
    }
    rec.record.labels = core::LabelBottlenecks(*job, *metrics);
    rec.record.job_cost = core::JobCost(*metrics);
    rec.record.backpressure = metrics->job_backpressure;
    rec.feedback = tuner->FeedbackFor(job->name());
    auto admitted = service->Admit(rec);
    if (!admitted.ok()) {
      std::fprintf(stderr, "admission failed: %s\n",
                   admitted.status().ToString().c_str());
      return 1;
    }
    Status st = service->Save(flags.at("kb-path"));
    if (!st.ok()) {
      std::fprintf(stderr, "kb save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf(
        "admitted into cluster %d (distance %.1f%s%s), kb v%lld -> %s\n",
        admitted->cluster, admitted->distance,
        admitted->drifted ? ", drifted" : "",
        admitted->repretrained ? ", re-pretrained" : "", service->version(),
        flags.at("kb-path").c_str());
  }
  return 0;
}

int CmdAdmit(const std::map<std::string, std::string>& flags) {
  if (!flags.count("kb-path") || !flags.count("history")) return Usage();
  auto service = kb::KbService::Open(flags.at("kb-path"));
  if (!service.ok()) {
    std::fprintf(stderr, "kb load failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  auto records = core::LoadHistory(flags.at("history"));
  if (!records.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }
  int repretrains = 0;
  for (auto& r : *records) {
    kb::AdmissionRecord rec;
    rec.record = std::move(r);
    auto outcome = (*service)->Admit(rec);
    if (!outcome.ok()) {
      std::fprintf(stderr, "admission failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    if (outcome->repretrained) ++repretrains;
  }
  Status st = (*service)->Save(flags.at("kb-path"));
  if (!st.ok()) {
    std::fprintf(stderr, "kb save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("admitted %zu record(s), %d re-pretrain(s), kb v%lld -> %s\n",
              records->size(), repretrains, (*service)->version(),
              flags.at("kb-path").c_str());
  return 0;
}

int CmdSimulate(const std::map<std::string, std::string>& flags) {
  if (!flags.count("job")) return Usage();
  auto job = ParseJobSpec(flags.at("job"), false);
  if (!job.ok()) {
    std::fprintf(stderr, "%s\n", job.status().ToString().c_str());
    return 2;
  }
  double rate = flags.count("rate") ? std::atof(flags.at("rate").c_str())
                                    : 1.0;
  std::vector<int> parallelism(job->num_operators(), 1);
  if (flags.count("parallelism")) {
    const std::string& list = flags.at("parallelism");
    size_t pos = 0;
    for (int v = 0; v < job->num_operators() && pos < list.size(); ++v) {
      parallelism[v] = std::atoi(list.c_str() + pos);
      size_t comma = list.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  sim::PerfModel model(*job, workloads::CostConfigFor(*job));
  std::vector<double> rates(job->num_operators(), 0.0);
  for (int v = 0; v < job->num_operators(); ++v) {
    if (job->op(v).is_source()) rates[v] = job->op(v).source_rate * rate;
  }
  auto r = sim::RunEventSimulation(*job, model, parallelism, rates);
  if (!r.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  TablePrinter table("discrete-event simulation of " + job->name(),
                     {"operator", "p", "busy", "blocked", "queue",
                      "in rec/s"});
  for (int v = 0; v < job->num_operators(); ++v) {
    table.AddRow({job->op(v).name, std::to_string(parallelism[v]),
                  TablePrinter::Fmt(r->busy_frac[v], 2),
                  TablePrinter::Fmt(r->blocked_frac[v], 2),
                  TablePrinter::Fmt(r->avg_queue_length[v], 1),
                  TablePrinter::Fmt(r->input_rate[v], 0)});
  }
  table.Print();
  std::printf("source throughput ratio: %.3f (%zu events, rescale %.1fx)\n",
              r->source_throughput_ratio, r->events_processed,
              r->time_rescale);
  return 0;
}

int CmdInspect(const std::map<std::string, std::string>& flags) {
  if (flags.count("history")) {
    auto records = core::LoadHistory(flags.at("history"));
    if (!records.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   records.status().ToString().c_str());
      return 1;
    }
    std::map<std::string, int> per_job;
    int pos = 0, neg = 0, unl = 0, bp = 0;
    for (const auto& rec : *records) {
      ++per_job[rec.graph.name()];
      if (rec.backpressure) ++bp;
      for (int l : rec.labels) {
        if (l == 1) ++pos;
        else if (l == 0) ++neg;
        else ++unl;
      }
    }
    std::printf("%zu records over %zu jobs, %d with backpressure\n",
                records->size(), per_job.size(), bp);
    std::printf("operator labels: %d bottleneck / %d clear / %d unlabeled\n",
                pos, neg, unl);
    return 0;
  }
  if (flags.count("bundle")) {
    auto bundle = core::LoadBundle(flags.at("bundle"));
    if (!bundle.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   bundle.status().ToString().c_str());
      return 1;
    }
    std::printf("bundle: %d cluster(s), %zu corpus records\n",
                bundle->num_clusters(), bundle->records().size());
    for (int c = 0; c < bundle->num_clusters(); ++c) {
      const core::ClusterModel& cm = bundle->cluster(c);
      std::printf(
          "  cluster %d: center=%s (%d ops), %zu records, encoder "
          "%dx%d layers=%d\n",
          c, cm.center.name().c_str(), cm.center.num_operators(),
          cm.record_indices.size(), cm.encoder.config().feature_dim,
          cm.encoder.config().hidden_dim, cm.encoder.config().num_layers);
    }
    return 0;
  }
  if (flags.count("kb")) {
    auto loaded = kb::LoadKb(flags.at("kb"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "kb: %d cluster(s), %zu corpus records (%lld at last pre-train), "
        "%lld admission(s), %lld drifted\n",
        loaded->bundle->num_clusters(), loaded->bundle->records().size(),
        loaded->pretrain_corpus_size, loaded->admissions_total,
        loaded->drifted_since_pretrain);
    for (size_t c = 0; c < loaded->appearance.size(); ++c) {
      std::printf("  cluster %zu: center=%s, appearance=%lld\n", c,
                  loaded->bundle->cluster(static_cast<int>(c))
                      .center.name()
                      .c_str(),
                  loaded->appearance[c]);
    }
    for (const auto& [name, job] : loaded->jobs) {
      std::printf(
          "  job %s: %lld admission(s), %zu feedback sample(s), %zu GP "
          "observation(s)\n",
          name.c_str(), job.admissions, job.feedback.size(),
          job.gp_observations.size());
    }
    return 0;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (cmd == "collect") return CmdCollect(flags);
  if (cmd == "pretrain") return CmdPretrain(flags);
  if (cmd == "tune") return CmdTune(flags);
  if (cmd == "admit") return CmdAdmit(flags);
  if (cmd == "simulate") return CmdSimulate(flags);
  if (cmd == "inspect") return CmdInspect(flags);
  return Usage();
}
