// st_analyze — the self-hosted invariant checker (DESIGN.md §10).
//
// Usage:
//   st_analyze [--root=DIR] [--baseline=FILE] [--write-baseline=FILE]
//              [--rule=st-name ...] [--list-rules] PATH...
//
// PATHs are files or directories relative to --root (default: cwd).
// Directories are walked recursively for *.h / *.cc, skipping
// analysis_fixtures/ and build*/ trees. Exit codes: 0 = clean,
// 1 = findings, 2 = usage or I/O error.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/rules.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: st_analyze [--root=DIR] [--baseline=FILE]\n"
      "                  [--write-baseline=FILE] [--rule=st-name ...]\n"
      "                  [--list-rules] PATH...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using streamtune::analysis::AnalyzerOptions;
  using streamtune::analysis::Finding;

  AnalyzerOptions options;
  std::string baseline_path;
  std::string write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      size_t len = std::strlen(flag);
      if (arg.compare(0, len, flag) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--list-rules") {
      for (const auto& rule : streamtune::analysis::BuildAllRules()) {
        std::printf("%s\n", rule->name());
      }
      return 0;
    } else if (const char* v = value_of("--root")) {
      options.root = v;
    } else if (const char* v = value_of("--baseline")) {
      baseline_path = v;
    } else if (const char* v = value_of("--write-baseline")) {
      write_baseline_path = v;
    } else if (const char* v = value_of("--rule")) {
      options.enabled_rules.insert(v);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.paths.empty()) return Usage();

  if (!baseline_path.empty()) {
    auto loaded = streamtune::analysis::LoadBaseline(baseline_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "st_analyze: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    options.baseline = std::move(loaded).value();
  }

  auto report = streamtune::analysis::RunAnalyzer(options);
  if (!report.ok()) {
    std::fprintf(stderr, "st_analyze: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  if (!write_baseline_path.empty()) {
    auto st = streamtune::analysis::WriteBaseline(write_baseline_path,
                                                 report->findings);
    if (!st.ok()) {
      std::fprintf(stderr, "st_analyze: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %zu finding(s) to %s\n", report->findings.size(),
                write_baseline_path.c_str());
    return 0;
  }

  for (const Finding& f : report->findings) {
    std::printf("%s\n", f.ToString().c_str());
  }
  std::printf(
      "st_analyze: %d file(s), %zu finding(s), %d nolint-suppressed, "
      "%d baselined\n",
      report->files_analyzed, report->findings.size(),
      report->suppressed_nolint, report->suppressed_baseline);
  return report->findings.empty() ? 0 : 1;
}
