// st_analyze — the self-hosted invariant checker (DESIGN.md §10, §15).
//
// Usage:
//   st_analyze [--root=DIR] [--baseline=FILE] [--write-baseline=FILE]
//              [--rule=st-name ...] [--cache=FILE] [--sarif=FILE]
//              [--threads=N] [--stats] [--list-rules] PATH...
//
// PATHs are files or directories relative to --root (default: cwd).
// Directories are walked recursively for *.h / *.cc, skipping
// analysis_fixtures/ and build*/ trees. With --cache=FILE, per-file facts
// and findings are reused across runs when file contents are unchanged.
// Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/graph_rules.h"
#include "analysis/rules.h"
#include "analysis/sarif.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: st_analyze [--root=DIR] [--baseline=FILE]\n"
      "                  [--write-baseline=FILE] [--rule=st-name ...]\n"
      "                  [--cache=FILE] [--sarif=FILE] [--threads=N]\n"
      "                  [--stats] [--list-rules] PATH...\n");
  return 2;
}

void PrintStats(const streamtune::analysis::AnalysisReport& r) {
  const streamtune::analysis::GraphAnalysisStats& g = r.graph;
  std::printf("-- st_analyze stats --\n");
  std::printf("files: %d analyzed (%d re-tokenized, %d from cache)\n",
              r.files_analyzed, r.files_retokenized, r.files_from_cache);
  std::printf(
      "call graph: %d functions, %d nodes (%d ambiguous), edges: %d "
      "resolved / %d ambiguous / %d external\n",
      g.call_graph.functions, g.call_graph.nodes, g.call_graph.ambiguous_nodes,
      g.call_graph.resolved_edges, g.call_graph.ambiguous_edges,
      g.call_graph.external_edges);
  std::printf("sccs: %d (%d nontrivial)\n", g.call_graph.scc_count,
              g.call_graph.nontrivial_sccs);
  std::printf(
      "interprocedural: %d tainted function(s), %d lock-order edge(s), "
      "%d cycle(s)\n",
      g.tainted_functions, g.lock_order_edges, g.lock_order_cycles);
  std::printf("phases: scan %.1fms, rules %.1fms, graph %.1fms\n", r.scan_ms,
              r.rules_ms, r.graph_ms);
  std::map<std::string, int> per_rule;
  for (const streamtune::analysis::Finding& f : r.findings) {
    ++per_rule[f.rule];
  }
  for (const auto& [rule, count] : per_rule) {
    std::printf("findings[%s]: %d\n", rule.c_str(), count);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using streamtune::analysis::AnalyzerOptions;
  using streamtune::analysis::Finding;

  AnalyzerOptions options;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      size_t len = std::strlen(flag);
      if (arg.compare(0, len, flag) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--list-rules") {
      for (const auto& rule : streamtune::analysis::BuildAllRules()) {
        std::printf("%s\n", rule->name());
      }
      for (const std::string& name : streamtune::analysis::GraphRuleNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--stats") {
      stats = true;
    } else if (const char* v = value_of("--root")) {
      options.root = v;
    } else if (const char* v = value_of("--baseline")) {
      baseline_path = v;
    } else if (const char* v = value_of("--write-baseline")) {
      write_baseline_path = v;
    } else if (const char* v = value_of("--rule")) {
      options.enabled_rules.insert(v);
    } else if (const char* v = value_of("--cache")) {
      options.cache_path = v;
    } else if (const char* v = value_of("--sarif")) {
      sarif_path = v;
    } else if (const char* v = value_of("--threads")) {
      options.threads = std::atoi(v);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.paths.empty()) return Usage();

  if (!baseline_path.empty()) {
    auto loaded = streamtune::analysis::LoadBaseline(baseline_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "st_analyze: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    options.baseline = std::move(loaded).value();
  }

  auto report = streamtune::analysis::RunAnalyzer(options);
  if (!report.ok()) {
    std::fprintf(stderr, "st_analyze: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  if (!sarif_path.empty()) {
    auto st = streamtune::analysis::WriteSarif(sarif_path, report->findings);
    if (!st.ok()) {
      std::fprintf(stderr, "st_analyze: %s\n", st.ToString().c_str());
      return 2;
    }
  }

  if (!write_baseline_path.empty()) {
    auto st = streamtune::analysis::WriteBaseline(write_baseline_path,
                                                 report->findings);
    if (!st.ok()) {
      std::fprintf(stderr, "st_analyze: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %zu finding(s) to %s\n", report->findings.size(),
                write_baseline_path.c_str());
    return 0;
  }

  for (const Finding& f : report->findings) {
    std::printf("%s\n", f.ToString().c_str());
  }
  std::printf(
      "st_analyze: %d file(s), %zu finding(s), %d nolint-suppressed, "
      "%d baselined\n",
      report->files_analyzed, report->findings.size(),
      report->suppressed_nolint, report->suppressed_baseline);
  if (stats) PrintStats(*report);
  return report->findings.empty() ? 0 : 1;
}
